package workloads

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/vm"
)

// runWorkload executes detection + classification with the evaluation
// defaults (Mp=5, Ma=2, 2 symbolic inputs).
func runWorkload(t *testing.T, w *Workload) (*core.Result, map[string]*core.Verdict) {
	t.Helper()
	p := w.Compile()
	res := core.Run(p, w.Args, w.Inputs, core.DefaultOptions())
	for _, err := range res.Errors {
		t.Fatalf("%s: classification error: %v", w.Name, err)
	}
	byName := map[string]*core.Verdict{}
	for _, v := range res.Verdicts {
		if v.Race.Loc.Space != vm.SpaceGlobal {
			t.Fatalf("%s: unexpected heap race %s", w.Name, v.Race.ID())
		}
		name := p.Globals[v.Race.Key.Obj].Name
		if _, dup := byName[name]; dup {
			t.Fatalf("%s: two distinct races on global %q (design rule: one per global)", w.Name, name)
		}
		byName[name] = v
	}
	return res, byName
}

// checkTruth asserts that Portend's verdicts match the per-race ground
// truth table of the workload.
func checkTruth(t *testing.T, w *Workload, byName map[string]*core.Verdict) {
	t.Helper()
	for name, exp := range w.Truth {
		v, ok := byName[name]
		if !ok {
			t.Errorf("%s: expected race on %q was not detected", w.Name, name)
			continue
		}
		if v.Class != exp.Portend {
			t.Errorf("%s: race on %q classified %s, want %s (%s)",
				w.Name, name, v.Class, exp.Portend, v)
		}
		if exp.Portend == core.SpecViolated && exp.Consequence != core.ConsNone &&
			v.Consequence != exp.Consequence {
			t.Errorf("%s: race on %q consequence %s, want %s (%s)",
				w.Name, name, v.Consequence, exp.Consequence, v.Detail)
		}
	}
	for name := range byName {
		if _, ok := w.Truth[name]; !ok {
			t.Errorf("%s: unexpected race on %q (%s)", w.Name, name, byName[name])
		}
	}
}

func testWorkload(t *testing.T, w *Workload) {
	_, byName := runWorkload(t, w)
	if len(byName) != len(w.Truth) {
		t.Errorf("%s: %d distinct races, want %d", w.Name, len(byName), len(w.Truth))
	}
	checkTruth(t, w, byName)
}

func TestSQLiteWorkload(t *testing.T)    { testWorkload(t, SQLite()) }
func TestOceanWorkload(t *testing.T)     { testWorkload(t, Ocean()) }
func TestFmmWorkload(t *testing.T)       { testWorkload(t, Fmm()) }
func TestMemcachedWorkload(t *testing.T) { testWorkload(t, Memcached()) }
func TestPbzip2Workload(t *testing.T)    { testWorkload(t, Pbzip2()) }
func TestCtraceWorkload(t *testing.T)    { testWorkload(t, Ctrace()) }
func TestBbufWorkload(t *testing.T)      { testWorkload(t, Bbuf()) }
func TestAVVWorkload(t *testing.T)       { testWorkload(t, AVV()) }
func TestDCLWorkload(t *testing.T)       { testWorkload(t, DCL()) }
func TestDBMWorkload(t *testing.T)       { testWorkload(t, DBM()) }
func TestRWWorkload(t *testing.T)        { testWorkload(t, RW()) }

func TestFmmSemanticPredicate(t *testing.T) {
	w := Fmm()
	p := w.Compile()
	opts := core.DefaultOptions()
	opts.Predicates = w.Predicates(p)
	res := core.Run(p, w.Args, w.Inputs, opts)
	for _, err := range res.Errors {
		t.Fatalf("error: %v", err)
	}
	found := false
	for _, v := range res.Verdicts {
		name := p.Globals[v.Race.Key.Obj].Name
		if name == "phase" {
			if v.Class != core.SpecViolated || v.Consequence != core.ConsSemantic {
				t.Fatalf("phase race with predicate: got %s (%s), want specViol/semantic", v.Class, v.Detail)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("phase race not detected")
	}
}

func TestMemcachedWhatIf(t *testing.T) {
	w := Memcached()
	res, err := core.WhatIf(w.Source, w.Name, w.WhatIfLines, w.Args, w.Inputs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NewRaces) == 0 {
		t.Fatal("removing the slotMu critical section must induce new races")
	}
	foundCrash := false
	for _, v := range res.NewRaces {
		if v.Class == core.SpecViolated && v.Consequence == core.ConsCrash {
			foundCrash = true
		}
	}
	if !foundCrash {
		for _, v := range res.NewRaces {
			t.Logf("new race: %s -> %s (%s)", v.Race.ID(), v.Class, v.Detail)
		}
		t.Fatal("the what-if race must crash under some interleaving (Table 2: memcached)")
	}
}

func TestWorkloadInventory(t *testing.T) {
	ws := All()
	if len(ws) != 11 {
		t.Fatalf("want 11 workloads, got %d", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Fatalf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
		if w.LOC() == 0 {
			t.Fatalf("%s: empty source", w.Name)
		}
		if w.Threads <= 0 || w.PaperLOC <= 0 {
			t.Fatalf("%s: missing Table 1 metadata", w.Name)
		}
		if w.Paper.Distinct == 0 {
			t.Fatalf("%s: missing paper row", w.Name)
		}
		// Programs must compile.
		w.Compile()
	}
	if ByName("pbzip2") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(Applications()) != 7 || len(Micro()) != 4 {
		t.Fatal("grouping broken")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	w := Bbuf()
	_, first := runWorkload(t, w)
	_, second := runWorkload(t, w)
	if len(first) != len(second) {
		t.Fatal("nondeterministic race counts")
	}
	for name, v := range first {
		if second[name] == nil || second[name].Class != v.Class {
			t.Fatalf("nondeterministic classification for %s", name)
		}
	}
}

func TestScaleSourceCompilesAndScales(t *testing.T) {
	small := ScaleSource(10, 3)
	big := ScaleSource(200, 15)
	ps := bytecode.MustCompile(small, "scale-s", bytecode.Options{})
	pb := bytecode.MustCompile(big, "scale-b", bytecode.Options{})
	stS := vm.NewState(ps, nil, []int64{3})
	vm.NewMachine(stS, vm.NewRoundRobin()).Run(-1)
	stB := vm.NewState(pb, nil, []int64{3})
	vm.NewMachine(stB, vm.NewRoundRobin()).Run(-1)
	if stB.Steps <= stS.Steps {
		t.Fatal("bigger parameters should execute more instructions")
	}
	// The scale program has exactly one distinct race (the redundant
	// write on g).
	res := core.Run(ps, nil, []int64{3}, core.DefaultOptions())
	if len(res.Verdicts) != 1 {
		t.Fatalf("scale: %d races, want 1", len(res.Verdicts))
	}
	if res.Verdicts[0].Class != core.KWitnessHarmless {
		t.Fatalf("scale race should be k-witness, got %s", res.Verdicts[0].Class)
	}
}

func TestSyncLines(t *testing.T) {
	src := "a\nlock(m)\nb\nunlock(m)\nlock(m)\n"
	if got := SyncLines(src, "lock(m)"); len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
	if SyncLines(src, "nothing") != nil {
		t.Fatal("no matches should give nil")
	}
}

func TestMemcachedWhatIfLinesPointAtLocks(t *testing.T) {
	w := Memcached()
	if len(w.WhatIfLines) != 4 {
		t.Fatalf("want 4 designated sync lines, got %v", w.WhatIfLines)
	}
	lines := strings.Split(w.Source, "\n")
	for _, ln := range w.WhatIfLines {
		if !strings.Contains(lines[ln-1], "lock(slotMu)") {
			t.Fatalf("line %d is %q, not a slotMu lock", ln, lines[ln-1])
		}
	}
}

func TestPaperRowTotalsConsistent(t *testing.T) {
	for _, w := range All() {
		p := w.Paper
		if p.SpecViol+p.OutDiff+p.KWSame+p.KWDiff+p.SingleOrd != p.Distinct {
			t.Fatalf("%s: paper row classes do not sum to distinct", w.Name)
		}
		if len(w.Truth) != p.Distinct {
			t.Fatalf("%s: ground truth has %d races, paper row %d", w.Name, len(w.Truth), p.Distinct)
		}
	}
}

func TestTruthConsistency(t *testing.T) {
	// The only race where Portend's expected verdict differs from the
	// truth is the ocean misclassification.
	mismatches := 0
	for _, w := range All() {
		for name, e := range w.Truth {
			if e.Truth != e.Portend {
				mismatches++
				if w.Name != "ocean" || name != "residual" {
					t.Fatalf("unexpected designed misclassification: %s/%s", w.Name, name)
				}
			}
		}
	}
	if mismatches != 1 {
		t.Fatalf("want exactly 1 designed misclassification, got %d", mismatches)
	}
}
