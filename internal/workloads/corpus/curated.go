package corpus

// Curated returns the hand-picked half of the corpus: at least one
// instance of every family, with parameters chosen to sit squarely on the
// idiom each family is named for. The trickier shapes — the deadlock, the
// out-of-bounds crash, the double free, and the solver-blind known miss —
// are anchored here so they exist even at generator width zero.
func Curated() []*Program {
	return []*Program{
		adhocFlag("cur-adhoc-flag", []int64{11, 12, 13, 14}, 8),
		dcl("cur-dcl", 3, 42),
		redundantWrite("cur-redundant-write", 7, 1, 2),
		benignGauge("cur-benign-gauge", 50, 75),
		statsOutput("cur-stats-output", 2, false),
		statsOutput("cur-stats-gated", 3, true),
		statsSilent("cur-stats-silent", 2, 2, 3),
		deadlockFlag("cur-deadlock", 4),
		crashIndex("cur-crash-index", 4, 1, 7, 5),
		doubleFree("cur-double-free", 6, 4),
		lockFreeQueue("cur-lockfree-queue", 6),
		barrierHandoff("cur-barrier-handoff", 5),
		condvarHandoff("cur-condvar-handoff", 9),
		symPrefix("cur-sym-prefix", 3, 4, 200),
		solverBlind("cur-solver-blind", 49737637),
	}
}
