// Package corpus is the labeled evaluation corpus: a DataRaceBench-style
// suite of small PIL programs, each annotated with per-race ground truth,
// that measures Portend's classification *accuracy* at a scale the seven
// hand-ported Table 1 workloads cannot (DataRaceBench V1.4.1 — ~200
// labeled kernels — is the field's standard for exactly this, see
// PAPERS.md).
//
// The corpus has two halves:
//
//   - a curated set (curated.go): one or two hand-written programs per
//     idiom family, including the shapes that need care — deadlocks,
//     out-of-bounds crashes, double frees, solver-blind output gates;
//   - a generated set (generate.go): a deterministic, seedable generator
//     that stamps out parameter-varied instances of each family template,
//     labels included.
//
// Both halves reuse the workloads.Workload + workloads.Expected label
// schema, so the corpus runs through exactly the same harness as the
// paper's tables. Family names the idiom a program exercises; KnownMiss
// marks the globals where Portend's verdict is expected to differ from
// ground truth (the ocean-style solver-blind gate is the only such
// idiom today). See docs/evaluation.md for the taxonomy and how to add
// a program.
package corpus

import (
	"fmt"

	"repro/internal/workloads"
)

// Family names the synchronization/race idiom a corpus program exercises.
type Family string

// The idiom families of the corpus taxonomy. Each maps to one dominant
// expected verdict class; several also carry secondary races of other
// classes (e.g. the spin flag guarding a crash-index program is itself a
// singleOrd race).
const (
	// FamAdhocFlag: data published behind an ad-hoc "ready" flag that a
	// consumer spins on — the flag and the data it guards are singleOrd.
	FamAdhocFlag Family = "adhoc-flag"
	// FamDCL: double-checked locking — the unlocked fast-path read is a
	// k-witness harmless race.
	FamDCL Family = "dcl"
	// FamRedundantWrite: racing threads store the same value (k-witness,
	// states same).
	FamRedundantWrite Family = "redundant-write"
	// FamBenignGauge: a monitor samples a progress gauge another thread
	// updates; every observable value is valid (k-witness).
	FamBenignGauge Family = "benign-gauge"
	// FamStatsOutput: unsynchronized stats counters whose values reach
	// the output — sometimes only on a non-recorded input path (outDiff).
	FamStatsOutput Family = "stats-output"
	// FamStatsSilent: racy bookkeeping that never reaches the output
	// (k-witness, states differ).
	FamStatsSilent Family = "stats-silent"
	// FamDeadlock: a racy init flag whose stale read sends a consumer
	// into a condition wait that is never signalled (specViol/deadlock).
	FamDeadlock Family = "deadlock"
	// FamCrashIndex: a racy array index that is out of range until a
	// fixer thread's write lands (specViol/crash).
	FamCrashIndex Family = "crash-index"
	// FamDoubleFree: a racy "already freed" guard around free()
	// (specViol/crash).
	FamDoubleFree Family = "double-free"
	// FamLockFreeQueue: lock-free queue bookkeeping — racy head/count
	// updates that reach the output (outDiff) behind a singleOrd
	// non-empty flag.
	FamLockFreeQueue Family = "lockfree-queue"
	// FamBarrierHandoff: threads race on a counter before a barrier
	// hand-off publishes it to the output (outDiff), alongside a
	// benign-value write (k-witness).
	FamBarrierHandoff Family = "barrier-handoff"
	// FamCondvarHandoff: a properly signalled condvar hand-off with one
	// benign early read racing the publisher (k-witness).
	FamCondvarHandoff Family = "condvar-handoff"
	// FamSymPrefix: input() and input-dependent branches precede every
	// race — the shape that exercises the symbolic checkpoint store
	// (races are redundant writes: k-witness).
	FamSymPrefix Family = "sym-prefix"
	// FamSolverBlind: the racy value reaches the output only behind an
	// input gate the solver cannot satisfy (ocean §5.4): truth outDiff,
	// Portend k-witness — the corpus's known-miss idiom.
	FamSolverBlind Family = "solver-blind"
)

// Families returns the taxonomy in canonical order.
func Families() []Family {
	return []Family{
		FamAdhocFlag, FamDCL, FamRedundantWrite, FamBenignGauge,
		FamStatsOutput, FamStatsSilent, FamDeadlock, FamCrashIndex,
		FamDoubleFree, FamLockFreeQueue, FamBarrierHandoff,
		FamCondvarHandoff, FamSymPrefix, FamSolverBlind,
	}
}

// Program is one labeled corpus entry. It embeds the workload schema, so
// Compile/ExpectedFor/LOC and the Truth label map work exactly as they do
// for the Table 1 workloads.
type Program struct {
	*workloads.Workload

	// Family is the idiom this program exercises.
	Family Family

	// Generated marks generator output (false for curated programs).
	Generated bool

	// Seed is the generator seed that produced the program (0 for
	// curated entries).
	Seed uint64

	// KnownMiss names the racy globals whose expected Portend verdict
	// deliberately differs from ground truth (Expected.Portend !=
	// Expected.Truth). The label invariant — checked by the corpus unit
	// tests — is that the two sets coincide exactly.
	KnownMiss map[string]bool
}

// Defaults for the shipped corpus; cmd/paper-eval exposes both as flags.
const (
	// DefaultSeed seeds the generated half of the default suite.
	DefaultSeed uint64 = 6
	// DefaultPerFamily is how many generated instances each family
	// template contributes to the default suite.
	DefaultPerFamily = 4
)

// Default returns the shipped corpus: every curated program plus the
// generated set at the default seed and width. This is the suite the
// CORPUS_*.json baselines and the CI accuracy gate run.
func Default() []*Program {
	return Suite(DefaultSeed, DefaultPerFamily)
}

// Suite returns the curated programs followed by perFamily generated
// instances of every generator template at the given seed. The result is
// fully deterministic in (seed, perFamily).
func Suite(seed uint64, perFamily int) []*Program {
	out := Curated()
	out = append(out, Generate(seed, perFamily)...)
	return out
}

// ByFamily filters a corpus to one family, preserving order.
func ByFamily(progs []*Program, f Family) []*Program {
	var out []*Program
	for _, p := range progs {
		if p.Family == f {
			out = append(out, p)
		}
	}
	return out
}

// newProgram assembles a corpus entry, defaulting KnownMiss to the empty
// set so label-invariant checks can treat the field as always present.
func newProgram(name string, fam Family, source string, truth map[string]workloads.Expected) *Program {
	return &Program{
		Workload: &workloads.Workload{
			Name:   name,
			Source: source,
			Truth:  truth,
		},
		Family:    fam,
		KnownMiss: map[string]bool{},
	}
}

// genName names a generated program: stable across seeds (content varies
// with the seed, identity does not), so baseline diffs track accuracy
// shifts rather than renames.
func genName(fam Family, i int) string {
	return fmt.Sprintf("gen-%s-%02d", fam, i)
}
