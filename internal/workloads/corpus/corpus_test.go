package corpus

import (
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/lang"
)

// TestGenerateDeterministic pins the generator contract: the same
// (seed, perFamily) yields byte-identical program text and labels, run
// to run. The whole corpus baseline (CORPUS_<n>.json) rests on this.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSeed, DefaultPerFamily)
	b := Generate(DefaultSeed, DefaultPerFamily)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("program %d name differs: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if a[i].Source != b[i].Source {
			t.Errorf("%s: source differs between identical-seed generations", a[i].Name)
		}
		if !reflect.DeepEqual(a[i].Truth, b[i].Truth) {
			t.Errorf("%s: labels differ between identical-seed generations", a[i].Name)
		}
		if !reflect.DeepEqual(a[i].KnownMiss, b[i].KnownMiss) {
			t.Errorf("%s: known-miss sets differ between identical-seed generations", a[i].Name)
		}
	}
}

// TestGenerateSeedVaries asserts the seed actually reaches the drawn
// parameters: a different seed must change at least one program's text,
// while names stay identical (identity is seed-free by design).
func TestGenerateSeedVaries(t *testing.T) {
	a := Generate(1, DefaultPerFamily)
	b := Generate(2, DefaultPerFamily)
	varied := false
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("program %d: name %q became %q under a seed change; names must be seed-free",
				i, a[i].Name, b[i].Name)
		}
		if a[i].Source != b[i].Source {
			varied = true
		}
	}
	if !varied {
		t.Error("seeds 1 and 2 generated identical corpora; the seed is not reaching the parameter draws")
	}
}

// TestGenerateStreamsIndependent asserts the per-(family, index) stream
// keying: widening perFamily must not reshuffle the programs already
// generated at a smaller width.
func TestGenerateStreamsIndependent(t *testing.T) {
	narrow := Generate(DefaultSeed, 2)
	wide := Generate(DefaultSeed, 5)
	byName := map[string]*Program{}
	for _, p := range wide {
		byName[p.Name] = p
	}
	for _, p := range narrow {
		w, ok := byName[p.Name]
		if !ok {
			t.Fatalf("%s present at perFamily=2 but missing at perFamily=5", p.Name)
		}
		if w.Source != p.Source {
			t.Errorf("%s: source changed when perFamily widened from 2 to 5", p.Name)
		}
	}
}

// TestSuiteShape checks the shipped suite's size floor and that names
// are unique — duplicate names would make confusion-matrix rows and
// baseline mismatch reports ambiguous.
func TestSuiteShape(t *testing.T) {
	suite := Default()
	if len(suite) < 50 {
		t.Errorf("default suite has %d programs, want >= 50", len(suite))
	}
	seen := map[string]bool{}
	for _, p := range suite {
		if seen[p.Name] {
			t.Errorf("duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
	}
	curated, generated := 0, 0
	for _, p := range suite {
		if p.Generated {
			generated++
			if p.Seed != DefaultSeed {
				t.Errorf("%s: generated program carries seed %d, want %d", p.Name, p.Seed, DefaultSeed)
			}
		} else {
			curated++
			if p.Seed != 0 {
				t.Errorf("%s: curated program carries nonzero seed %d", p.Name, p.Seed)
			}
		}
	}
	if curated == 0 || generated == 0 {
		t.Errorf("suite must mix curated (%d) and generated (%d) programs", curated, generated)
	}
}

// TestFamilyCoverage asserts every family in the taxonomy is exercised
// by at least one program of the default suite, and that every program
// names a family from the taxonomy.
func TestFamilyCoverage(t *testing.T) {
	suite := Default()
	known := map[Family]bool{}
	for _, f := range Families() {
		known[f] = true
	}
	for _, f := range Families() {
		if len(ByFamily(suite, f)) == 0 {
			t.Errorf("family %s has no programs in the default suite", f)
		}
	}
	for _, p := range suite {
		if !known[p.Family] {
			t.Errorf("%s: family %q is not in Families()", p.Name, p.Family)
		}
	}
}

// TestLabelInvariants checks every program of the default suite
// compiles and carries well-formed labels:
//
//   - every Truth key names a real global of the compiled program;
//   - every program labels at least one race;
//   - KnownMiss only names labeled globals;
//   - Expected.Portend differs from Expected.Truth exactly on the
//     KnownMiss set — a divergence without a known-miss flag (or vice
//     versa) is a labeling bug.
func TestLabelInvariants(t *testing.T) {
	for _, cp := range Default() {
		cp := cp
		t.Run(cp.Name, func(t *testing.T) {
			src, err := lang.Parse(cp.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			p, err := bytecode.Compile(src, cp.Name, bytecode.Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(cp.Truth) == 0 {
				t.Fatal("program labels no races")
			}
			for name, exp := range cp.Truth {
				if p.GlobalID(name) < 0 {
					t.Errorf("label names global %q, which the compiled program does not declare", name)
				}
				if diverges := exp.Portend != exp.Truth; diverges != cp.KnownMiss[name] {
					if diverges {
						t.Errorf("global %q: expected Portend verdict %v differs from truth %v but is not flagged as a known miss",
							name, exp.Portend, exp.Truth)
					} else {
						t.Errorf("global %q: flagged as a known miss but Portend and truth labels agree (%v)",
							name, exp.Truth)
					}
				}
			}
			for name := range cp.KnownMiss {
				if _, ok := cp.Truth[name]; !ok {
					t.Errorf("KnownMiss names %q, which has no label", name)
				}
			}
		})
	}
}
