package corpus

// The generator: a deterministic, seedable source of labeled corpus
// programs. Each generated program draws its parameters from a splitmix64
// stream keyed by (seed, family, index), so the full suite is a pure
// function of (seed, perFamily) — same seed, same program text, same
// labels, byte for byte. Program *names* deliberately do not embed the
// seed: changing the seed changes content, not identity, so accuracy
// baselines diff cleanly across seeds.

// rng is a splitmix64 stream — the same generator the engine uses for
// schedule seeds, chosen here for determinism and statelessness, not
// statistical strength.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// between returns a draw in [lo, hi], inclusive.
func (r *rng) between(lo, hi int) int {
	return lo + int(r.next()%uint64(hi-lo+1))
}

// progRNG keys an independent stream per (seed, family, index), so adding
// a family or widening one never reshuffles the draws of the others.
func progRNG(seed uint64, famIdx, i int) *rng {
	return &rng{s: seed ^ uint64(famIdx+1)*0x517cc1b727220a95 ^ uint64(i+1)*0x2545f4914f6cdd1d}
}

// generators lists the family templates the generator stamps out, in
// canonical order. The condvar-handoff and solver-blind families stay
// curated-only: their labels hinge on delicate solver/scheduler behavior
// that parameter variation would not exercise further.
var generators = []struct {
	fam   Family
	build func(r *rng, name string) *Program
}{
	{FamAdhocFlag, func(r *rng, name string) *Program {
		vals := make([]int64, r.between(1, 3))
		for i := range vals {
			vals[i] = int64(r.between(5, 90))
		}
		return adhocFlag(name, vals, r.between(6, 10))
	}},
	{FamDCL, func(r *rng, name string) *Program {
		return dcl(name, r.between(2, 4), int64(r.between(10, 99)))
	}},
	{FamRedundantWrite, func(r *rng, name string) *Program {
		return redundantWrite(name, int64(r.between(0, 9)), int64(r.between(1, 40)), r.between(2, 3))
	}},
	{FamBenignGauge, func(r *rng, name string) *Program {
		return benignGauge(name, int64(r.between(10, 60)), int64(r.between(61, 99)))
	}},
	{FamStatsOutput, func(r *rng, name string) *Program {
		// Alternate gated and ungated variants so both the direct and the
		// multi-path-only outDiff discoveries stay covered.
		return statsOutput(name, r.between(1, 2), r.between(0, 1) == 1)
	}},
	{FamStatsSilent, func(r *rng, name string) *Program {
		va := int64(r.between(1, 40))
		return statsSilent(name, r.between(1, 3), va, va+int64(r.between(1, 20)))
	}},
	{FamDeadlock, func(r *rng, name string) *Program {
		return deadlockFlag(name, r.between(2, 9))
	}},
	{FamCrashIndex, func(r *rng, name string) *Program {
		size := r.between(3, 6)
		return crashIndex(name, size, int64(r.between(0, size-1)), int64(r.between(1, 30)), r.between(5, 8))
	}},
	{FamDoubleFree, func(r *rng, name string) *Program {
		return doubleFree(name, r.between(3, 12), r.between(2, 6))
	}},
	{FamLockFreeQueue, func(r *rng, name string) *Program {
		return lockFreeQueue(name, r.between(6, 9))
	}},
	{FamBarrierHandoff, func(r *rng, name string) *Program {
		return barrierHandoff(name, int64(r.between(1, 50)))
	}},
	{FamSymPrefix, func(r *rng, name string) *Program {
		return symPrefix(name, r.between(2, 4), r.between(2, 5), r.between(80, 220))
	}},
}

// GeneratedFamilies returns the families the generator can stamp out.
func GeneratedFamilies() []Family {
	out := make([]Family, 0, len(generators))
	for _, g := range generators {
		out = append(out, g.fam)
	}
	return out
}

// Generate returns perFamily labeled instances of every generator
// template, deterministically derived from seed.
func Generate(seed uint64, perFamily int) []*Program {
	var out []*Program
	for famIdx, g := range generators {
		for i := 0; i < perFamily; i++ {
			p := g.build(progRNG(seed, famIdx, i), genName(g.fam, i))
			p.Generated = true
			p.Seed = seed
			out = append(out, p)
		}
	}
	return out
}
