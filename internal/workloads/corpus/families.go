package corpus

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

// This file holds one parameterized builder per idiom family. The
// builders are shared by the curated set (hand-picked parameters) and the
// generator (rng-drawn parameters), so every corpus program — curated or
// generated — carries labels produced by the same template logic.
//
// Each template mirrors a shape the engine is already validated on by the
// Table 1 workloads (the ad-hoc flags of memcached, the crash index and
// double free of pbzip2, the gated counters of bbuf, the silent
// bookkeeping of ctrace, the deadlock of sqlite, the solver-blind gate of
// ocean), so the expected Portend verdict is known, not guessed.

func sleeps(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("\tsleep(1)\n")
	}
}

// adhocFlag: values published behind an ad-hoc ready flag a consumer
// spins on. The flag and every datum it guards are singleOrd.
func adhocFlag(name string, vals []int64, sleepN int) *Program {
	var b strings.Builder
	b.WriteString("// adhoc-flag: data published behind an ad-hoc ready flag.\n")
	var sum int64
	for i := range vals {
		fmt.Fprintf(&b, "var d%d = 0\n", i+1)
		sum += vals[i]
	}
	b.WriteString("var ready = 0\nfn producer() {\n")
	for i, v := range vals {
		fmt.Fprintf(&b, "\td%d = %d\n", i+1, v)
	}
	sleeps(&b, sleepN)
	b.WriteString("\tready = 1\n}\nfn consumer() {\n\twhile ready == 0 { usleep(50) }\n\tlet sum = ")
	for i := range vals {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "d%d", i+1)
	}
	fmt.Fprintf(&b, "\n\tassert(sum == %d)\n}\n", sum)
	b.WriteString("fn main() {\n\tlet p = spawn producer()\n\tlet c = spawn consumer()\n\tjoin(p)\n\tjoin(c)\n\tprint(\"published\")\n}\n")

	truth := map[string]workloads.Expected{
		"ready": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
	}
	for i := range vals {
		truth[fmt.Sprintf("d%d", i+1)] = workloads.Expected{Truth: core.SingleOrdering, Portend: core.SingleOrdering}
	}
	return newProgram(name, FamAdhocFlag, b.String(), truth)
}

// dcl: double-checked locking; the unlocked fast-path read races the
// locked initializing write, but every interleaving initializes once.
func dcl(name string, users int, val int64) *Program {
	var b strings.Builder
	b.WriteString("// dcl: double-checked locking.\nvar resource = 0\nmutex mu\nfn get() {\n\tlet r = resource\n\tif r == 0 {\n\t\tlock(mu)\n")
	fmt.Fprintf(&b, "\t\tif resource == 0 { resource = %d }\n", val)
	fmt.Fprintf(&b, "\t\tunlock(mu)\n\t\tr = %d\n\t}\n\treturn r\n}\n", val)
	fmt.Fprintf(&b, "fn user() {\n\tlet v = get()\n\tassert(v == %d)\n}\n", val)
	b.WriteString("fn main() {\n")
	for i := 0; i < users; i++ {
		fmt.Fprintf(&b, "\tlet u%d = spawn user()\n", i)
	}
	for i := 0; i < users; i++ {
		fmt.Fprintf(&b, "\tjoin(u%d)\n", i)
	}
	b.WriteString("\tprint(\"dcl done\")\n}\n")
	return newProgram(name, FamDCL, b.String(), map[string]workloads.Expected{
		"resource": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
	})
}

// redundantWrite: racing threads store the same value, which is printed —
// every ordering yields the same state and output.
func redundantWrite(name string, initial, val int64, writers int) *Program {
	var b strings.Builder
	fmt.Fprintf(&b, "// redundant-write: racing threads store the same value.\nvar gen = %d\n", initial)
	for i := 0; i < writers; i++ {
		fmt.Fprintf(&b, "fn reset%d() {\n\tgen = %d\n}\n", i, val)
	}
	b.WriteString("fn main() {\n")
	for i := 0; i < writers; i++ {
		fmt.Fprintf(&b, "\tlet t%d = spawn reset%d()\n", i, i)
	}
	for i := 0; i < writers; i++ {
		fmt.Fprintf(&b, "\tjoin(t%d)\n", i)
	}
	b.WriteString("\tprint(\"gen=\", gen)\n}\n")
	return newProgram(name, FamRedundantWrite, b.String(), map[string]workloads.Expected{
		"gen": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
	})
}

// benignGauge: a monitor samples a progress gauge a worker updates; every
// observable value is valid and nothing reaches the output.
func benignGauge(name string, initial, update int64) *Program {
	var b strings.Builder
	fmt.Fprintf(&b, "// benign-gauge: all sampled values are valid.\nvar gauge = %d\nvar sample = 0\n", initial)
	fmt.Fprintf(&b, "fn worker() {\n\tgauge = %d\n}\n", update)
	b.WriteString("fn monitor() {\n\tsample = gauge\n}\nfn main() {\n\tlet w = spawn worker()\n\tlet m = spawn monitor()\n\tjoin(w)\n\tjoin(m)\n\tprint(\"gauge done\")\n}\n")
	return newProgram(name, FamBenignGauge, b.String(), map[string]workloads.Expected{
		"gauge": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
	})
}

// statsOutput: counters bumped without synchronization by two workers,
// printed at the end — directly, or (gated=true) only on a non-recorded
// input path that multi-path analysis must discover, as in bbuf.
func statsOutput(name string, counters int, gated bool) *Program {
	var b strings.Builder
	b.WriteString("// stats-output: racy counters whose values reach the output.\n")
	for i := 0; i < counters; i++ {
		fmt.Fprintf(&b, "var c%d = 0\n", i+1)
	}
	for _, w := range []string{"wa", "wb"} {
		fmt.Fprintf(&b, "fn %s() {\n", w)
		for i := 0; i < counters; i++ {
			fmt.Fprintf(&b, "\tc%d = c%d + 1\n", i+1, i+1)
		}
		b.WriteString("}\n")
	}
	b.WriteString("fn main() {\n")
	if gated {
		b.WriteString("\tlet verbose = input()\n")
	}
	b.WriteString("\tlet a = spawn wa()\n\tlet z = spawn wb()\n\tjoin(a)\n\tjoin(z)\n")
	prints := func(indent string) {
		for i := 0; i < counters; i++ {
			fmt.Fprintf(&b, "%sprint(\"c%d=\", c%d)\n", indent, i+1, i+1)
		}
	}
	if gated {
		b.WriteString("\tif verbose > 0 {\n")
		prints("\t\t")
		b.WriteString("\t} else {\n\t\tprint(\"stats ok\")\n\t}\n")
	} else {
		prints("\t")
	}
	b.WriteString("}\n")

	truth := map[string]workloads.Expected{}
	for i := 0; i < counters; i++ {
		truth[fmt.Sprintf("c%d", i+1)] = workloads.Expected{Truth: core.OutputDiffers, Portend: core.OutputDiffers}
	}
	p := newProgram(name, FamStatsOutput, b.String(), truth)
	if gated {
		p.Inputs = []int64{0}
	}
	return p
}

// statsSilent: two threads write different values to bookkeeping globals
// that never reach the output — harmless, but the post-race states
// differ.
func statsSilent(name string, globals int, va, vb int64) *Program {
	var b strings.Builder
	b.WriteString("// stats-silent: racy bookkeeping that never reaches the output.\n")
	for i := 0; i < globals; i++ {
		fmt.Fprintf(&b, "var m%d = 0\n", i+1)
	}
	b.WriteString("fn wa() {\n")
	for i := 0; i < globals; i++ {
		fmt.Fprintf(&b, "\tm%d = %d\n", i+1, va)
	}
	b.WriteString("}\nfn wb() {\n")
	for i := 0; i < globals; i++ {
		fmt.Fprintf(&b, "\tm%d = %d\n", i+1, vb)
	}
	b.WriteString("}\nfn main() {\n\tlet a = spawn wa()\n\tlet z = spawn wb()\n\tjoin(a)\n\tjoin(z)\n\tprint(\"silent done\")\n}\n")

	truth := map[string]workloads.Expected{}
	for i := 0; i < globals; i++ {
		truth[fmt.Sprintf("m%d", i+1)] = workloads.Expected{
			Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true,
		}
	}
	return newProgram(name, FamStatsSilent, b.String(), truth)
}

// deadlockFlag: the sqlite shape — a consumer checks an init flag without
// synchronization; on the stale path it waits for a signal that is never
// sent while main blocks in join.
func deadlockFlag(name string, auxIters int) *Program {
	var b strings.Builder
	b.WriteString(`// deadlock: stale init-flag read waits for a signal never sent.
var initFlag = 0
var ready = 0
var work = 0
mutex mu
cond done
fn consumer() {
	let seen = initFlag
	if seen == 0 {
		lock(mu)
		while ready == 0 { wait(done, mu) }
		unlock(mu)
	}
	work = work + 1
	print("consumer ran")
}
fn aux() {
	let local = 0
`)
	fmt.Fprintf(&b, "\tfor i = 0, %d { local = local + i }\n", auxIters)
	b.WriteString(`	print("aux ", local)
}
fn main() {
	let c = spawn consumer()
	initFlag = 1
	let a = spawn aux()
	join(c)
	join(a)
	print("shutdown")
}
`)
	return newProgram(name, FamDeadlock, b.String(), map[string]workloads.Expected{
		"initFlag": {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsDeadlock},
	})
}

// crashIndex: a slot index starts out of range; a fixer thread writes an
// in-range value, racing the worker that uses it. The alternate ordering
// indexes out of bounds and crashes. The done flag the worker spins on is
// its own singleOrd race.
func crashIndex(name string, size int, fixVal, storeVal int64, sleepN int) *Program {
	var b strings.Builder
	fmt.Fprintf(&b, "// crash-index: racy slot index, out of range until fixed.\nvar idx = %d\nvar slots[%d]\nvar done = 0\n", size, size)
	fmt.Fprintf(&b, "fn fixer() {\n\tidx = %d\n}\n", fixVal)
	fmt.Fprintf(&b, "fn worker() {\n\twhile done == 0 { usleep(50) }\n\tslots[idx] = %d\n}\n", storeVal)
	b.WriteString("fn main() {\n\tlet f = spawn fixer()\n\tlet w = spawn worker()\n")
	sleeps(&b, sleepN)
	b.WriteString("\tdone = 1\n\tjoin(f)\n\tjoin(w)\n\tprint(\"stored\")\n}\n")
	return newProgram(name, FamCrashIndex, b.String(), map[string]workloads.Expected{
		"idx":  {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
		"done": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
	})
}

// doubleFree: a racy "still allocated" guard around free(). The recorded
// ordering frees once; the alternate ordering passes the stale guard and
// frees twice — a crash.
func doubleFree(name string, pad, size int) *Program {
	var b strings.Builder
	fmt.Fprintf(&b, "// double-free: racy liveness guard around free().\nvar bufLive = 1\nvar buf = 0\n")
	b.WriteString("fn release() {\n\tif bufLive == 1 {\n\t\tbufLive = 0\n\t\tfree(buf)\n\t}\n}\nfn early() {\n\trelease()\n}\nfn late() {\n\tlet local = 0\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d { local = local + 1 }\n", pad)
	b.WriteString("\trelease()\n}\nfn main() {\n")
	fmt.Fprintf(&b, "\tbuf = alloc(%d)\n", size)
	b.WriteString("\tlet a = spawn early()\n\tlet z = spawn late()\n\tjoin(a)\n\tjoin(z)\n\tprint(\"freed\")\n}\n")
	return newProgram(name, FamDoubleFree, b.String(), map[string]workloads.Expected{
		"bufLive": {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
	})
}

// lockFreeQueue: two enqueuers race on the head counter (printed:
// outDiff) while a dequeuer spins on a non-empty flag (singleOrd) before
// consuming.
func lockFreeQueue(name string, sleepN int) *Program {
	var b strings.Builder
	b.WriteString("// lockfree-queue: racy enqueue counter behind a non-empty flag.\nvar head = 0\nvar taken = 0\nvar nonEmpty = 0\nfn enqA() {\n\thead = head + 1\n")
	sleeps(&b, sleepN)
	b.WriteString("\tnonEmpty = 1\n}\nfn enqB() {\n\thead = head + 1\n}\nfn deq() {\n\twhile nonEmpty == 0 { usleep(50) }\n\ttaken = taken + 1\n}\n")
	b.WriteString("fn main() {\n\tlet a = spawn enqA()\n\tlet z = spawn enqB()\n\tlet d = spawn deq()\n\tjoin(a)\n\tjoin(z)\n\tjoin(d)\n\tprint(\"head=\", head)\n\tprint(\"taken=\", taken)\n}\n")
	return newProgram(name, FamLockFreeQueue, b.String(), map[string]workloads.Expected{
		"head":     {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
		"nonEmpty": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
	})
}

// barrierHandoff: two workers race on a counter (printed after the
// barrier: outDiff) and on a benign same-value mark (k-witness) before
// handing off to main at a barrier.
func barrierHandoff(name string, mark int64) *Program {
	var b strings.Builder
	b.WriteString("// barrier-handoff: racy counter published to main at a barrier.\nbarrier bar(3)\nvar cnt = 0\nvar mark = 0\n")
	for _, w := range []string{"wa", "wb"} {
		fmt.Fprintf(&b, "fn %s() {\n\tcnt = cnt + 1\n\tmark = %d\n\tbarrier_wait(bar)\n}\n", w, mark)
	}
	b.WriteString("fn main() {\n\tlet a = spawn wa()\n\tlet z = spawn wb()\n\tbarrier_wait(bar)\n\tprint(\"cnt=\", cnt)\n\tjoin(a)\n\tjoin(z)\n}\n")
	return newProgram(name, FamBarrierHandoff, b.String(), map[string]workloads.Expected{
		"cnt":  {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
		"mark": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
	})
}

// condvarHandoff: a correctly signalled condvar hand-off; the only race
// is a benign early peek at the payload before the consumer blocks.
func condvarHandoff(name string, val int64) *Program {
	var b strings.Builder
	b.WriteString("// condvar-handoff: proper hand-off with one benign early peek.\nvar data = 0\nvar ready = 0\nmutex mu\ncond cv\n")
	fmt.Fprintf(&b, "fn producer() {\n\tdata = %d\n\tlock(mu)\n\tready = 1\n\tbroadcast(cv)\n\tunlock(mu)\n}\n", val)
	b.WriteString("fn consumer() {\n\tlet peek = data\n\tlock(mu)\n\twhile ready == 0 { wait(cv, mu) }\n\tunlock(mu)\n\tprint(\"data=\", data)\n}\n")
	b.WriteString("fn main() {\n\tlet p = spawn producer()\n\tlet c = spawn consumer()\n\tjoin(p)\n\tjoin(c)\n}\n")
	return newProgram(name, FamCondvarHandoff, b.String(), map[string]workloads.Expected{
		"data": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
	})
}

// symPrefix: input() and input-dependent branches precede every race (the
// races themselves are redundant writes). This is the shape that makes
// the symbolic checkpoint store earn its keep — see ckpt.SymStore.
func symPrefix(name string, races, branches, pad int) *Program {
	truth := map[string]workloads.Expected{}
	for i := 0; i < races; i++ {
		truth[fmt.Sprintf("g%d", i)] = workloads.Expected{Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless}
	}
	p := newProgram(name, FamSymPrefix, workloads.SymPrefixRaceSource(races, branches, pad), truth)
	p.Inputs = []int64{2}
	return p
}

// solverBlind: the ocean §5.4 idiom — the racy value reaches the output
// only behind an input gate (factoring a semiprime) the solver cannot
// satisfy within budget. Ground truth is outDiff; Portend is expected to
// report k-witness: the corpus's known-miss entry.
func solverBlind(name string, semiprime int64) *Program {
	var b strings.Builder
	b.WriteString("// solver-blind: output difference hidden behind an unsatisfiable-in-budget gate.\nvar res = 0\nfn wa() {\n\tres = 3\n}\nfn wb() {\n\tyield()\n\tres = 4\n}\n")
	b.WriteString("fn main() {\n\tlet a = input()\n\tlet b = input()\n\tlet t1 = spawn wa()\n\tlet t2 = spawn wb()\n\tjoin(t1)\n\tjoin(t2)\n")
	fmt.Fprintf(&b, "\tif a > 1 && b > 1 && a < 100000 && b < 100000 && a * b == %d {\n", semiprime)
	b.WriteString("\t\tprint(\"res=\", res)\n\t} else {\n\t\tprint(\"steady\")\n\t}\n}\n")
	p := newProgram(name, FamSolverBlind, b.String(), map[string]workloads.Expected{
		"res": {Truth: core.OutputDiffers, Portend: core.KWitnessHarmless, StatesDiffer: true},
	})
	p.Inputs = []int64{7, 9}
	p.KnownMiss["res"] = true
	return p
}
