package workloads

import (
	"repro/internal/bytecode"
	"repro/internal/core"
)

// Fmm reproduces the n-body workload: a tree builder publishes body data
// behind an ad-hoc flag (11 singleOrd races) while two compute threads
// hammer a shared simulation timestamp (the hot race responsible for most
// of the paper's 517 instances). The timestamp-related races are harmless
// by themselves, but the phase race writes a transiently negative
// timestamp on its stale path — the semantic property of §5.1 ("verify
// that all timestamps used in fmm are positive") turns it into the sixth
// harmful race of Table 2.
func Fmm() *Workload {
	return &Workload{
		Name: "fmm", Language: "C", PaperLOC: 11545, Threads: 3,
		Source: `
// fmm-sim: tree build + force computation phases.
var body1 = 0
var body2 = 0
var body3 = 0
var body4 = 0
var body5 = 0
var body6 = 0
var body7 = 0
var body8 = 0
var body9 = 0
var body10 = 0
var treeReady = 0
var ts = 20
var phase = 0
fn builder() {
	body1 = 1
	body2 = 2
	body3 = 3
	body4 = 4
	body5 = 5
	body6 = 6
	body7 = 7
	body8 = 8
	body9 = 9
	body10 = 10
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	treeReady = 1
}
fn hammerB() {
	for i = 0, 170 {
		ts = ts + 1
		yield()
		if i == 1 {
			let seen = phase
			if seen == 0 {
				ts = 0 - 5
				ts = 30
			}
		}
	}
}
fn hammerA() {
	phase = 1
	for i = 0, 170 {
		ts = 110
		yield()
	}
}
fn main() {
	let tb = spawn hammerB()
	let ta = spawn hammerA()
	let tt = spawn builder()
	while treeReady == 0 { usleep(50) }
	let total = body1 + body2 + body3 + body4 + body5 + body6 + body7 + body8 + body9 + body10
	assert(total == 55)
	join(tb)
	join(ta)
	join(tt)
	print("fmm done")
}`,
		Truth: map[string]Expected{
			"body1":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body2":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body3":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body4":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body5":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body6":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body7":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body8":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body9":     {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"body10":    {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"treeReady": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"ts":        {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
			"phase":     {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
		},
		Predicates: func(p *bytecode.Program) []core.Predicate {
			return []core.Predicate{
				core.GlobalPredicate("timestamps positive", p.GlobalID("ts"), func(v int64) bool { return v >= 0 }),
			}
		},
		Paper: PaperRow{Distinct: 13, Instances: 517, SingleOrd: 12, KWDiff: 1, CloudNineSecs: 24.87, PortendAvgSecs: 64.45},
	}
}

// Ocean reproduces the eddy-current simulator: grid slices published
// behind an ad-hoc flag (4 singleOrd races) and the residual race — the
// paper's single misclassification (§5.4): truly "output differs", but
// the output difference hides behind an input combination (a factoring
// of a large semiprime) that the solver cannot produce within its
// budget, so Portend reports "k-witness harmless".
func Ocean() *Workload {
	return &Workload{
		Name: "ocean", Language: "C", PaperLOC: 11665, Threads: 2,
		Source: `
// ocean-sim: red-black relaxation with an ad-hoc "grid ready" flag.
var g1 = 0
var g2 = 0
var g3 = 0
var gridReady = 0
var residual = 0
fn solverT() {
	g1 = 5
	g2 = 6
	g3 = 7
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	gridReady = 1
	residual = 3
}
fn auxT() {
	yield()
	residual = 4
}
fn main() {
	let a = input()
	let b = input()
	let ts = spawn solverT()
	let tx = spawn auxT()
	while gridReady == 0 { usleep(50) }
	let sum = g1 + g2 + g3
	assert(sum == 18)
	join(ts)
	join(tx)
	if a > 1 && b > 1 && a < 100000 && b < 100000 && a * b == 49737637 {
		print("residual=", residual)
	} else {
		print("ocean steady")
	}
}`,
		Inputs: []int64{7, 9},
		Truth: map[string]Expected{
			"g1":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"g2":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"g3":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"gridReady": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			// Ground truth: output differs (for a = 6353, b = 7829 the
			// residual is printed and is order-dependent). Portend cannot
			// find that input combination: expected verdict k-witness.
			"residual": {Truth: core.OutputDiffers, Portend: core.KWitnessHarmless, StatesDiffer: true},
		},
		Paper: PaperRow{Distinct: 5, Instances: 14, SingleOrd: 4, KWDiff: 1, CloudNineSecs: 19.64, PortendAvgSecs: 60.02},
	}
}
