package workloads

import "repro/internal/core"

// Memcached reproduces the cache-server workload: two initialization
// threads publish settings behind ad-hoc ready flags (16 singleOrd
// races), and worker threads bump stats counters whose values reach the
// "stats" output (2 outDiff, Fig 8(c)-style). The what-if analysis of
// §5.1 — "is it safe to remove this synchronization?" — targets the
// mutex that guards the slot index: removing it lets a reader observe the
// transient out-of-range index and crash (the introduced memcached crash
// of Table 2).
func Memcached() *Workload {
	w := &Workload{
		Name: "memcached", Language: "C", PaperLOC: 8300, Threads: 8,
		Source: `
// memcached-sim: settings published via ad-hoc init flags; stats counters
// racy by design (the paper: statistics "need not be precise").
var s1 = 0
var s2 = 0
var s3 = 0
var s4 = 0
var s5 = 0
var s6 = 0
var s7 = 0
var t1 = 0
var t2 = 0
var t3 = 0
var t4 = 0
var t5 = 0
var t6 = 0
var t7 = 0
var readyA = 0
var readyB = 0
var currItems = 0
var totalGets = 0
var slotIdx = 2
var slots[4]
mutex slotMu
fn bumpItems() { currItems = currItems + 1 }
fn bumpGets() { totalGets = totalGets + 1 }
fn initThread() {
	s1 = 11
	s2 = 12
	s3 = 13
	s4 = 14
	s5 = 15
	s6 = 16
	s7 = 17
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	readyA = 1
}
fn cacheThread() {
	t1 = 21
	t2 = 22
	t3 = 23
	t4 = 24
	t5 = 25
	t6 = 26
	t7 = 27
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	readyB = 1
}
fn readerA() {
	while readyA == 0 { usleep(50) }
	let sum = s1 + s2 + s3 + s4 + s5 + s6 + s7
	assert(sum == 98)
}
fn readerB() {
	while readyB == 0 { usleep(50) }
	let sum = t1 + t2 + t3 + t4 + t5 + t6 + t7
	assert(sum == 168)
}
fn itemWorker() {
	bumpItems()
	lock(slotMu)
	slotIdx = 4
	slotIdx = 1
	unlock(slotMu)
}
fn itemWorker2() {
	bumpItems()
	yield()
	yield()
	lock(slotMu)
	let i = slotIdx
	unlock(slotMu)
	slots[i] = 9
}
fn getWorker() {
	bumpGets()
}
fn main() {
	let verbose = input()
	let ti = spawn initThread()
	let tc = spawn cacheThread()
	let ra = spawn readerA()
	let rb = spawn readerB()
	let w1 = spawn itemWorker()
	let w2 = spawn itemWorker2()
	let w3 = spawn getWorker()
	let w4 = spawn getWorker()
	join(ti)
	join(tc)
	join(ra)
	join(rb)
	join(w1)
	join(w2)
	join(w3)
	join(w4)
	print("curr_items=", currItems)
	if verbose > 0 {
		print("total_gets=", totalGets)
	} else {
		print("stats end")
	}
}`,
		Inputs: []int64{0},
		Truth: map[string]Expected{
			"s1":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s2":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s3":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s4":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s5":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s6":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"s7":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t1":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t2":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t3":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t4":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t5":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t6":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"t7":        {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"readyA":    {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"readyB":    {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"currItems": {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"totalGets": {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
		},
		Paper: PaperRow{Distinct: 18, Instances: 104, OutDiff: 2, SingleOrd: 16, CloudNineSecs: 73.87, PortendAvgSecs: 645.99},
	}
	// The what-if analysis removes the slotMu critical sections; the
	// needle matches both lock and unlock lines.
	w.WhatIfLines = SyncLines(w.Source, "lock(slotMu)")
	return w
}
