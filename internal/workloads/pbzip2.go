package workloads

import "repro/internal/core"

// Pbzip2 reproduces the parallel-compressor workload: a three-stage
// pipeline (file reader → compressor → output writer) synchronized with
// ad-hoc "done" flags exactly like the paper's Fig 8(d). The pipeline
// data slots protected by those flags are the bulk of the "single
// ordering" races (Table 3: 25); three races crash under the alternate
// ordering (Table 2: 3 crashes) and three queue/ratio counters reach the
// output (3 outDiff, one of which only a non-recorded input path prints).
func Pbzip2() *Workload {
	return &Workload{
		Name: "pbzip2", Language: "C++", PaperLOC: 6686, Threads: 4,
		Source: `
// pbzip2-sim: reader fills block slots, sets fileDone; compressor spins
// on fileDone, fills output slots, sets compDone; writer spins on
// compDone, consumes outputs, sets allDone; main spins on allDone.
var b1 = 0
var b2 = 0
var b3 = 0
var b4 = 0
var b5 = 0
var b6 = 0
var b7 = 0
var b8 = 0
var b9 = 0
var b10 = 0
var b11 = 0
var o1 = 0
var o2 = 0
var o3 = 0
var o4 = 0
var o5 = 0
var o6 = 0
var o7 = 0
var o8 = 0
var o9 = 0
var o10 = 0
var o11 = 0
var fileDone = 0
var compDone = 0
var allDone = 0
var qlen = 0
var ratio = 0
var chunks = 0
var wIdx = 4
var wArr[4]
var fIdx = 4
var fArr[4]
var bufInit = 1
var bufRef = 0
fn freeBuf() {
	if bufInit == 1 {
		bufInit = 0
		free(bufRef)
	}
}
fn reader() {
	b1 = 101
	b2 = 102
	b3 = 103
	b4 = 104
	b5 = 105
	b6 = 106
	b7 = 107
	b8 = 108
	b9 = 109
	b10 = 110
	b11 = 111
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	fileDone = 1
	qlen = qlen + 1
	chunks = chunks + 1
}
fn compressor() {
	while fileDone == 0 { usleep(50) }
	o1 = b1 * 2
	o2 = b2 * 2
	o3 = b3 * 2
	o4 = b4 * 2
	o5 = b5 * 2
	o6 = b6 * 2
	o7 = b7 * 2
	o8 = b8 * 2
	o9 = b9 * 2
	o10 = b10 * 2
	o11 = b11 * 2
	fArr[fIdx] = 9
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	compDone = 1
	qlen = qlen - 1
	ratio = ratio + 3
}
fn writer() {
	while compDone == 0 { usleep(50) }
	let wsum = o1 + o2 + o3 + o4 + o5 + o6 + o7 + o8 + o9 + o10 + o11
	wArr[wIdx] = wsum
	freeBuf()
	ratio = ratio + 2
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	sleep(1)
	allDone = 1
}
fn extra() {
	wIdx = 1
	fIdx = 1
	chunks = chunks + 1
	freeBuf()
}
fn main() {
	bufRef = alloc(4)
	let stats = input()
	let te = spawn extra()
	let tr = spawn reader()
	let tc = spawn compressor()
	let tw = spawn writer()
	while allDone == 0 { usleep(50) }
	join(te)
	join(tr)
	join(tc)
	join(tw)
	print("qlen=", qlen)
	print("ratio=", ratio)
	if stats > 0 {
		print("chunks=", chunks)
	} else {
		print("pbzip2 ok")
	}
}`,
		Inputs: []int64{0},
		Truth: map[string]Expected{
			// pipeline data and flags: single ordering
			"b1":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b2":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b3":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b4":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b5":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b6":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b7":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b8":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b9":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b10":      {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"b11":      {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o1":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o2":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o3":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o4":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o5":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o6":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o7":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o8":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o9":       {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o10":      {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"o11":      {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"fileDone": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"compDone": {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			"allDone":  {Truth: core.SingleOrdering, Portend: core.SingleOrdering},
			// crashes under the alternate ordering
			"wIdx":    {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
			"fIdx":    {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
			"bufInit": {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
			// order-dependent counters that reach the output
			"qlen":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"ratio":  {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"chunks": {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
		},
		Paper: PaperRow{Distinct: 31, Instances: 97, SpecViol: 3, OutDiff: 3, SingleOrd: 25, CloudNineSecs: 15.30, PortendAvgSecs: 360.72},
	}
}
