// Package workloads contains the PIL reproductions of the paper's
// evaluation targets (Table 1): SQLite, ocean, fmm, memcached, pbzip2,
// ctrace, bbuf, and the four micro-benchmarks (AVV, DCL, DBM, RW), plus
// the Fig 4 example and a parametric program for the Fig 9 scalability
// sweep.
//
// Each workload mirrors the *racy skeleton* of its real counterpart: the
// same kinds of races in the same proportions as Table 3 — ad-hoc
// synchronization flags and the data they guard (singleOrd), stats
// counters whose values reach the output (outDiff), redundant or
// benign-value writes (k-witness), and the harmful races of Table 2
// (deadlock, crashes, the fmm semantic violation, the memcached what-if
// crash).
//
// Ground truth is recorded per racy global, alongside the paper's
// published row values (PaperRow) for side-by-side reporting.
package workloads

import (
	"strings"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/vm"
)

// Expected is the ground truth for one distinct race.
type Expected struct {
	// Truth is the manually established class (the paper's "manual
	// inspection as ground truth", §5.4).
	Truth core.Class
	// Portend is the class Portend is expected to report; it differs
	// from Truth only for the one known misclassification (the ocean
	// race whose output difference hides behind an input combination the
	// solver cannot produce, §5.4).
	Portend core.Class
	// Consequence refines specViol rows (Table 2).
	Consequence core.Consequence
	// StatesDiffer is the expected Record/Replay-Analyzer criterion
	// (Table 3 "states same/differ").
	StatesDiffer bool
}

// PaperRow is a Table 3 row as published, for side-by-side reporting.
type PaperRow struct {
	Distinct, Instances           int
	SpecViol, OutDiff             int
	KWSame, KWDiff                int
	SingleOrd                     int
	CloudNineSecs, PortendAvgSecs float64 // Table 4 reference values
}

// Workload is one evaluation target.
type Workload struct {
	Name     string
	Language string // as reported in Table 1
	PaperLOC int    // real program's LOC (Table 1)
	Threads  int    // forked threads (Table 1)

	Source string
	Args   []int64
	Inputs []int64

	// Truth maps racy global name -> expectation. Every distinct race in
	// the workload is on a distinct global, so names identify races.
	Truth map[string]Expected

	// Predicates builds the semantic predicates for the Table 2 run
	// (only fmm uses this).
	Predicates func(p *bytecode.Program) []core.Predicate

	// WhatIfLines are lock/unlock source lines removed for the what-if
	// analysis (only memcached uses this).
	WhatIfLines []int

	Paper PaperRow
}

// Compile compiles the workload.
func (w *Workload) Compile() *bytecode.Program {
	return bytecode.MustCompile(w.Source, w.Name, bytecode.Options{})
}

// LOC returns the PIL source line count.
func (w *Workload) LOC() int { return bytecode.CountLOC(w.Source) }

// ExpectedFor returns the ground truth for a race on the given location,
// resolving the global name through the program.
func (w *Workload) ExpectedFor(p *bytecode.Program, loc vm.Loc) (Expected, string, bool) {
	if loc.Space != vm.SpaceGlobal {
		return Expected{}, "", false
	}
	name := p.Globals[loc.Obj].Name
	e, ok := w.Truth[name]
	return e, name, ok
}

// All returns every workload in evaluation order: the 7 applications of
// Table 2/3 followed by the micro-benchmarks.
func All() []*Workload {
	return []*Workload{
		SQLite(), Ocean(), Fmm(), Memcached(), Pbzip2(), Ctrace(), Bbuf(),
		AVV(), DCL(), DBM(), RW(),
	}
}

// Applications returns only the 7 real-application workloads.
func Applications() []*Workload {
	return All()[:7]
}

// Micro returns only the micro-benchmarks.
func Micro() []*Workload {
	return All()[7:]
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// SyncLines returns the 1-based source lines containing the needle; used
// to locate lock/unlock lines for the what-if analysis without hardcoding
// line numbers.
func SyncLines(source, needle string) []int {
	var out []int
	for i, line := range strings.Split(source, "\n") {
		if strings.Contains(line, needle) {
			out = append(out, i+1)
		}
	}
	return out
}
