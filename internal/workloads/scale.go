package workloads

import (
	"fmt"
	"strings"
)

// ScaleSource generates the parametric program used for the Fig 9
// scalability study: classification time as a function of the number of
// preemption points in the schedule and the number of branches that
// depend on symbolic input.
//
// The program contains one benign data race (a redundant write, so the
// classifier runs the full multi-path multi-schedule analysis), a loop of
// `preemptions` yield points that lengthens the recorded schedule, and
// `branches` input-dependent branches that the symbolic exploration must
// reason about.
func ScaleSource(preemptions, branches int) string {
	var b strings.Builder
	b.WriteString(`
// scale: parametric workload for the Fig 9 sweep.
var g = 0
var acc = 0
fn peer() {
	g = 5
}
fn main() {
	let x = input()
	let t = spawn peer()
	yield()
	g = 5
`)
	fmt.Fprintf(&b, "\tfor i = 0, %d { yield() }\n", preemptions)
	b.WriteString("\tjoin(t)\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d {\n", branches)
	b.WriteString("\t\tif x > i { acc = acc + 1 }\n\t}\n")
	b.WriteString("\tprint(\"acc=\", acc)\n}\n")
	return b.String()
}
