package workloads

import (
	"fmt"
	"strings"
)

// ScaleSource generates the parametric program used for the Fig 9
// scalability study: classification time as a function of the number of
// preemption points in the schedule and the number of branches that
// depend on symbolic input.
//
// The program contains one benign data race (a redundant write, so the
// classifier runs the full multi-path multi-schedule analysis), a loop of
// `preemptions` yield points that lengthens the recorded schedule, and
// `branches` input-dependent branches that the symbolic exploration must
// reason about.
func ScaleSource(preemptions, branches int) string {
	var b strings.Builder
	b.WriteString(`
// scale: parametric workload for the Fig 9 sweep.
var g = 0
var acc = 0
fn peer() {
	g = 5
}
fn main() {
	let x = input()
	let t = spawn peer()
	yield()
	g = 5
`)
	fmt.Fprintf(&b, "\tfor i = 0, %d { yield() }\n", preemptions)
	b.WriteString("\tjoin(t)\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d {\n", branches)
	b.WriteString("\t\tif x > i { acc = acc + 1 }\n\t}\n")
	b.WriteString("\tprint(\"acc=\", acc)\n}\n")
	return b.String()
}

// ManyRaceSource generates the workload behind the checkpoint-store
// benchmarks and tests: a `pad`-iteration compute prefix followed by
// `races` independent benign races on distinct globals. Classifying any
// of the races from the initial state must first re-interpret the whole
// prefix, so the analysis pays O(races × pad) interpretation without
// checkpoint reuse but only O(pad) with it — the "stop re-replaying the
// world" shape the shared replay store is built for. The single input
// read sits after the races, so the pre-race checkpoints are symbolic-
// safe and multi-path exploration resumes from the store too.
func ManyRaceSource(races, pad int) string {
	var b strings.Builder
	b.WriteString("// many-race: parametric workload for the checkpoint-store benchmarks.\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "var g%d = 0\n", i)
	}
	b.WriteString("var acc = 0\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "fn w%d() {\n\tg%d = 7\n}\n", i, i)
	}
	b.WriteString("fn main() {\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d { acc = acc + 1 }\n", pad)
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "\tlet t%d = spawn w%d()\n\tyield()\n\tg%d = 7\n\tjoin(t%d)\n", i, i, i, i)
	}
	b.WriteString("\tlet x = input()\n\tprint(\"acc=\", acc + x)\n}\n")
	return b.String()
}

// StaticPruneSource generates the workload behind the static-prune
// benchmarks and tests: `depth` nested input-dependent guards gate a
// region of `races` benign races, and the program's tail touches
// nothing shared. Multi-path exploration forks a bypass sibling at
// every guard; each sibling resumes on the guard's skip edge, from
// which neither the racy globals nor any further symbolic branch is
// statically reachable. Those siblings are exactly what the static
// prune can prove dead — run with pruning off they execute to
// completion and are discarded without contributing to any verdict, so
// skipping them changes instruction counts and nothing else. A nonzero
// `pad` appends a concrete compute tail every path (mainline and
// bypass alike) must execute, which is what makes each pruned sibling
// worth real interpretation time in the benchmarks. Analyze with
// inputs pinned above depth (e.g. 100) so the recorded run takes every
// guard and reaches the races.
func StaticPruneSource(depth, races, pad int) string {
	var b strings.Builder
	b.WriteString("// static-prune: nested tainted guards gating a racy region.\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "var g%d = 0\n", i)
	}
	b.WriteString("var acc = 0\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "fn w%d() {\n\tg%d = 7\n}\n", i, i)
	}
	b.WriteString("fn main() {\n\tlet x = input()\n")
	for d := 0; d < depth; d++ {
		fmt.Fprintf(&b, "%sif x > %d {\n", strings.Repeat("\t", d+1), d+1)
	}
	indent := strings.Repeat("\t", depth+1)
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "%slet t%d = spawn w%d()\n%syield()\n%sg%d = 7\n%sjoin(t%d)\n",
			indent, i, i, indent, indent, i, indent, i)
	}
	for d := depth - 1; d >= 0; d-- {
		fmt.Fprintf(&b, "%s}\n", strings.Repeat("\t", d+1))
	}
	if pad > 0 {
		fmt.Fprintf(&b, "\tfor i = 0, %d { acc = acc + 1 }\n", pad)
	}
	b.WriteString("\tprint(\"done\")\n}\n")
	return b.String()
}

// SymPrefixRaceSource is ManyRaceSource with the input() moved ahead of
// the races: after a `pad`-iteration compute prefix, the `input()` read
// and `branches` input-dependent branches execute, and only then the
// races. With symbolic inputs enabled, every pre-race replay state has
// consumed a symbolic read, so the concrete checkpoint store can never
// seed multi-path exploration here; only the symbolic store — which
// snapshots the exploration mainline past the input frontier, with the
// branch-forked siblings still pending in the fork queue — lets races
// after the first skip the prefix. This is the shape behind the
// symbolic-store tests and benchmarks.
func SymPrefixRaceSource(races, branches, pad int) string {
	var b strings.Builder
	b.WriteString("// sym-prefix: input() and symbolic branches before every race.\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "var g%d = 0\n", i)
	}
	b.WriteString("var acc = 0\n")
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "fn w%d() {\n\tg%d = 7\n}\n", i, i)
	}
	b.WriteString("fn main() {\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d { acc = acc + 1 }\n", pad)
	b.WriteString("\tlet x = input()\n")
	fmt.Fprintf(&b, "\tfor i = 0, %d {\n\t\tif x > i { acc = acc + 1 }\n\t}\n", branches)
	for i := 0; i < races; i++ {
		fmt.Fprintf(&b, "\tlet t%d = spawn w%d()\n\tyield()\n\tg%d = 7\n\tjoin(t%d)\n", i, i, i, i)
	}
	b.WriteString("\tprint(\"acc=\", acc + x)\n}\n")
	return b.String()
}
