package workloads

import "repro/internal/core"

// The four micro-benchmarks of §5 capture the classic classes of harmless
// races [30, 45]. Each contains one distinct race that Portend must
// classify "k-witness harmless" with identical post-race states (Table 3).

// AVV is "all values valid": a monitor samples a progress gauge that a
// worker updates without synchronization; every observable value is
// valid.
func AVV() *Workload {
	return &Workload{
		Name: "avv", Language: "C++", PaperLOC: 49, Threads: 3,
		Source: `
// AVV: all values valid.
var progress = 50
var sample = 0
fn worker() {
	progress = 75
}
fn monitor() {
	sample = progress
}
fn main() {
	let w = spawn worker()
	let m = spawn monitor()
	join(w)
	join(m)
	print("avv done")
}`,
		Truth: map[string]Expected{
			"progress": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
		},
		Paper: PaperRow{Distinct: 1, Instances: 1, KWSame: 1, CloudNineSecs: 0.72, PortendAvgSecs: 0.83},
	}
}

// DCL is double-checked locking: the unlocked fast-path read of the
// resource races with the locked initializing write, but every
// interleaving initializes exactly once.
func DCL() *Workload {
	return &Workload{
		Name: "dcl", Language: "C++", PaperLOC: 45, Threads: 5,
		Source: `
// DCL: double-checked locking.
var resource = 0
mutex m
fn get() {
	let r = resource
	if r == 0 {
		lock(m)
		if resource == 0 { resource = 42 }
		unlock(m)
		r = 42
	}
	return r
}
fn user() {
	let v = get()
	assert(v == 42)
}
fn main() {
	let a = spawn user()
	let b = spawn user()
	let c = spawn user()
	let d = spawn user()
	join(a)
	join(b)
	join(c)
	join(d)
	print("dcl done")
}`,
		Truth: map[string]Expected{
			"resource": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
		},
		Paper: PaperRow{Distinct: 1, Instances: 1, KWSame: 1, CloudNineSecs: 0.74, PortendAvgSecs: 0.85},
	}
}

// DBM is disjoint bit manipulation: racing read-modify-writes OR disjoint
// bits into a flags word. (The value is deliberately not printed: on real
// hardware the bit-ops are independent; a whole-word lost update is the
// memory-level artifact the benchmark tolerates.)
func DBM() *Workload {
	return &Workload{
		Name: "dbm", Language: "C++", PaperLOC: 45, Threads: 3,
		Source: `
// DBM: disjoint bit manipulation.
var bits = 0
fn setLow() {
	bits = bits | 1
}
fn setHigh() {
	bits = bits | 2
}
fn main() {
	let a = spawn setLow()
	let b = spawn setHigh()
	join(a)
	join(b)
	print("dbm done")
}`,
		Truth: map[string]Expected{
			"bits": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
		},
		Paper: PaperRow{Distinct: 1, Instances: 1, KWSame: 1, CloudNineSecs: 0.72, PortendAvgSecs: 0.81},
	}
}

// RW is redundant writes: racing threads store the same value.
func RW() *Workload {
	return &Workload{
		Name: "rw", Language: "C++", PaperLOC: 42, Threads: 3,
		Source: `
// RW: redundant writes.
var generation = 7
fn resetA() {
	generation = 1
}
fn resetB() {
	generation = 1
}
fn main() {
	let a = spawn resetA()
	let b = spawn resetB()
	join(a)
	join(b)
	print("gen=", generation)
}`,
		Truth: map[string]Expected{
			"generation": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless},
		},
		Paper: PaperRow{Distinct: 1, Instances: 1, KWSame: 1, CloudNineSecs: 0.74, PortendAvgSecs: 0.81},
	}
}
