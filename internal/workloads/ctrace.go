package workloads

import "repro/internal/core"

// Ctrace reproduces the multithreaded debug-library workload. Its
// signature race is the paper's Fig 4 example (adapted from a real Ctrace
// bug): the race on the event id is harmless on the recorded (hash-table)
// input path, but on the array path the alternate ordering overflows the
// statically sized stats array — only multi-path analysis finds it
// (Table 2: ctrace, 1 crash). The remaining races are trace counters that
// reach the (debug-gated) output and redundant trace-level writes.
func Ctrace() *Workload {
	return &Workload{
		Name: "ctrace", Language: "C", PaperLOC: 886, Threads: 3,
		Source: `
// ctrace-sim: trace library with racy bookkeeping.
var id = 3
var table[8]
var arr[4]
var seq = 0
var c1 = 0
var c2 = 0
var c3 = 0
var c4 = 0
var c5 = 0
var c6 = 0
var c7 = 0
var c8 = 0
var c9 = 0
var lvl1 = 0
var lvl2 = 0
var lvl3 = 0
var lvl4 = 0
fn bumpSeq() { seq = seq + 1 }
fn bump1() { c1 = c1 + 1 }
fn bump2() { c2 = c2 + 1 }
fn bump3() { c3 = c3 + 1 }
fn bump4() { c4 = c4 + 1 }
fn bump5() { c5 = c5 + 1 }
fn bump6() { c6 = c6 + 1 }
fn bump7() { c7 = c7 + 1 }
fn bump8() { c8 = c8 + 1 }
fn bump9() { c9 = c9 + 1 }
fn reqHandler() {
	id = id + 1
	bumpSeq()
	bump1()
	bump2()
	bump3()
	bump4()
	bump5()
	lvl1 = 2
	lvl2 = 2
	lvl3 = 2
}
fn updateStats() {
	let use_hash = input()
	if use_hash > 0 {
		print("hash ", table[id])
	} else {
		if id < 4 {
			arr[id] = 1
		}
	}
	bumpSeq()
	bump1()
	bump2()
	bump3()
	bump4()
	bump5()
	bump6()
	bump7()
	bump8()
	bump9()
	lvl1 = 3
	lvl2 = 3
	lvl4 = 3
}
fn flusher() {
	bump6()
	bump7()
	bump8()
	bump9()
	lvl3 = 3
	lvl4 = 2
}
fn main() {
	let dbg = input()
	let t1 = spawn reqHandler()
	let t2 = spawn updateStats()
	let t3 = spawn flusher()
	join(t1)
	join(t2)
	join(t3)
	print("trace seq=", seq)
	if dbg > 0 {
		print("c1=", c1)
		print("c2=", c2)
		print("c3=", c3)
		print("c4=", c4)
		print("c5=", c5)
		print("c6=", c6)
		print("c7=", c7)
		print("c8=", c8)
		print("c9=", c9)
	} else {
		print("trace closed")
	}
}`,
		// input 0 = dbg (recorded off), input 1 = use_hash (recorded on).
		Inputs: []int64{0, 1},
		Truth: map[string]Expected{
			"id":   {Truth: core.SpecViolated, Portend: core.SpecViolated, Consequence: core.ConsCrash},
			"seq":  {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c1":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c2":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c3":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c4":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c5":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c6":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c7":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c8":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"c9":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"lvl1": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
			"lvl2": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
			"lvl3": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
			"lvl4": {Truth: core.KWitnessHarmless, Portend: core.KWitnessHarmless, StatesDiffer: true},
		},
		Paper: PaperRow{Distinct: 15, Instances: 19, SpecViol: 1, OutDiff: 10, KWDiff: 4, CloudNineSecs: 3.67, PortendAvgSecs: 24.29},
	}
}
