package workloads

import "repro/internal/core"

// SQLite reproduces the single harmful race of the paper's SQLite run: a
// racy check of an initialization flag whose alternate ordering sends a
// worker into a condition wait for a signal that is never sent, while the
// main thread blocks in join — a deadlock (Table 2: SQLite, 1 deadlock).
func SQLite() *Workload {
	return &Workload{
		Name: "sqlite", Language: "C", PaperLOC: 113326, Threads: 2,
		Source: `
// sqlite-sim: the library is "initialized" by the opening thread; a
// connection worker checks the flag without synchronization. If it reads
// the stale value it waits for an init-completed signal — but the opener
// believes initialization is already visible and never signals.
var dbInit = 0
var schemaReady = 0
var queries = 0
mutex dbMu
cond initDone
fn connWorker() {
	let seen = dbInit
	if seen == 0 {
		lock(dbMu)
		while schemaReady == 0 { wait(initDone, dbMu) }
		unlock(dbMu)
	}
	queries = queries + 1
	print("conn: ran query")
}
fn auxWorker() {
	let local = 0
	for i = 0, 3 { local = local + i }
	print("aux: housekeeping ", local)
}
fn main() {
	let c = spawn connWorker()
	dbInit = 1
	let a = spawn auxWorker()
	join(c)
	join(a)
	print("sqlite: shutdown")
}`,
		Truth: map[string]Expected{
			"dbInit": {
				Truth: core.SpecViolated, Portend: core.SpecViolated,
				Consequence: core.ConsDeadlock,
			},
		},
		Paper: PaperRow{Distinct: 1, Instances: 1, SpecViol: 1, CloudNineSecs: 3.10, PortendAvgSecs: 4.20},
	}
}

// Bbuf reproduces the shared-buffer workload: producers and consumers
// update buffer bookkeeping without synchronization; all six counters
// reach the (debug-gated) output, so every race is "output differs" —
// but only multi-path analysis reveals it, because the recorded input
// does not print the counters (Fig 7: bbuf needs multi-path analysis for
// all of its races).
func Bbuf() *Workload {
	return &Workload{
		Name: "bbuf", Language: "C", PaperLOC: 261, Threads: 8,
		Source: `
// bbuf-sim: bounded buffer bookkeeping with a configurable number of
// producers and consumers (4+4 here, as in the paper's 8-thread setup).
var head = 0
var tail = 0
var inCount = 0
var outCount = 0
var inSum = 0
var outSum = 0
fn bumpHead(v) {
	head = head + v
}
fn bumpTail(v) {
	tail = tail + v
}
fn bumpIn(v) {
	inCount = inCount + v
}
fn bumpOut(v) {
	outCount = outCount + v
}
fn sumIn(v) {
	inSum = inSum + v
}
fn sumOut(v) {
	outSum = outSum + v
}
fn producerA() { bumpHead(1); sumIn(10) }
fn producerB() { bumpHead(1); sumIn(20) }
fn producerC() { bumpIn(1); sumOut(5) }
fn producerD() { bumpIn(1); sumOut(6) }
fn consumerA() { bumpTail(1) }
fn consumerB() { bumpTail(1) }
fn consumerC() { bumpOut(1) }
fn consumerD() { bumpOut(1) }
fn main() {
	let verbose = input()
	let p1 = spawn producerA()
	let p2 = spawn producerB()
	let p3 = spawn producerC()
	let p4 = spawn producerD()
	let c1 = spawn consumerA()
	let c2 = spawn consumerB()
	let c3 = spawn consumerC()
	let c4 = spawn consumerD()
	join(p1)
	join(p2)
	join(p3)
	join(p4)
	join(c1)
	join(c2)
	join(c3)
	join(c4)
	if verbose > 0 {
		print("head=", head)
		print("tail=", tail)
		print("in=", inCount)
		print("out=", outCount)
		print("isum=", inSum)
		print("osum=", outSum)
	} else {
		print("bbuf ok")
	}
}`,
		Inputs: []int64{0},
		Truth: map[string]Expected{
			"head":     {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"tail":     {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"inCount":  {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"outCount": {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"inSum":    {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
			"outSum":   {Truth: core.OutputDiffers, Portend: core.OutputDiffers},
		},
		Paper: PaperRow{Distinct: 6, Instances: 6, OutDiff: 6, CloudNineSecs: 1.81, PortendAvgSecs: 4.47},
	}
}
