package repro

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/sa"
	"repro/internal/workloads"
	"repro/internal/workloads/corpus"
)

// pruneSuite is every target the prune contract is pinned on: the
// built-in workloads plus the two synthetic static-prune shapes, whose
// nested tainted guards mint the bypass siblings the prune exists to
// skip (the built-ins keep the prune honest on programs where it can
// prove little or nothing).
func pruneSuite() []*workloads.Workload {
	suite := append([]*workloads.Workload{}, workloads.All()...)
	suite = append(suite,
		&workloads.Workload{Name: "static-prune-deep", Source: workloads.StaticPruneSource(4, 1, 0), Inputs: []int64{100}},
		&workloads.Workload{Name: "static-prune-wide", Source: workloads.StaticPruneSource(3, 2, 0), Inputs: []int64{100}},
	)
	return suite
}

// TestStaticArtifactDeterminism pins the sa.Facts artifact bytes:
// analyzing any workload or curated corpus program repeatedly — and
// from 8 goroutines at once — yields the identical encoded artifact.
// The server caches the artifact per tier and keys admission decisions
// off it, so instability here would make admission behavior depend on
// which request computed the facts.
func TestStaticArtifactDeterminism(t *testing.T) {
	type prog struct {
		name string
		p    *bytecode.Program
	}
	var progs []prog
	for _, w := range pruneSuite() {
		progs = append(progs, prog{"workload/" + w.Name, w.Compile()})
	}
	for _, cp := range corpus.Curated() {
		progs = append(progs, prog{"corpus/" + cp.Name, cp.Compile()})
	}
	for _, pg := range progs {
		pg := pg
		t.Run(pg.name, func(t *testing.T) {
			t.Parallel()
			want := sa.Analyze(pg.p).Encode()
			got := make([][]byte, 8)
			var wg sync.WaitGroup
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = sa.Analyze(pg.p).Encode()
				}(i)
			}
			wg.Wait()
			for i := range got {
				if !bytes.Equal(want, got[i]) {
					t.Fatalf("artifact differs on concurrent run %d\n--- want ---\n%s\n--- got ---\n%s", i, want, got[i])
				}
			}
		})
	}
}

// runWithPrune runs one target with the static prune on or off and
// returns the rendered result plus the prune counters summed across
// verdicts.
func runWithPrune(p *bytecode.Program, w *workloads.Workload, parallel int, prune bool) (string, int, int) {
	opts := core.DefaultOptions()
	opts.Parallel = parallel
	opts.NoStaticPrune = !prune
	if w.Predicates != nil {
		opts.Predicates = w.Predicates(p)
	}
	res := core.Run(p, w.Args, w.Inputs, opts)
	pruned, ran := 0, 0
	for _, v := range res.Verdicts {
		pruned += v.Stats.PrunedSchedules
		ran += v.Stats.PathItemsRun
	}
	return renderResult(p, res), pruned, ran
}

// TestStaticPruneVerdictIdentity is the prune's HARD contract: for
// every workload (built-in and synthetic) and every curated corpus
// program, verdicts and reports are byte-identical with the static
// prune on and off, at pool widths 1 and 8. The prune may only skip
// worklist items the static analysis proves can neither reach the racy
// object nor fork — items whose completed runs are discarded anyway —
// so nothing user-visible may move.
func TestStaticPruneVerdictIdentity(t *testing.T) {
	type target struct {
		name string
		p    *bytecode.Program
		w    *workloads.Workload
	}
	var targets []target
	for _, w := range pruneSuite() {
		targets = append(targets, target{"workload/" + w.Name, w.Compile(), w})
	}
	for _, cp := range corpus.Curated() {
		targets = append(targets, target{"corpus/" + cp.Name, cp.Compile(),
			&workloads.Workload{Name: cp.Name, Args: cp.Args, Inputs: cp.Inputs}})
	}
	for _, tg := range targets {
		tg := tg
		t.Run(tg.name, func(t *testing.T) {
			t.Parallel()
			want, _, _ := runWithPrune(tg.p, tg.w, 1, false)
			for _, parallel := range []int{1, 8} {
				for _, prune := range []bool{false, true} {
					got, _, _ := runWithPrune(tg.p, tg.w, parallel, prune)
					if got != want {
						t.Errorf("verdicts differ at parallel=%d prune=%v\n--- want (parallel=1 prune=off) ---\n%s\n--- got ---\n%s",
							parallel, prune, want, got)
					}
				}
			}
		})
	}
}

// TestStaticPruneSkipsDeadSiblings pins that the prune actually bites
// on the shapes built for it: both synthetic workloads must show
// pruned items, a ≥20% reduction in worklist items run, and — per the
// identity contract above — unchanged verdicts.
func TestStaticPruneSkipsDeadSiblings(t *testing.T) {
	for _, w := range []*workloads.Workload{
		{Name: "static-prune-deep", Source: workloads.StaticPruneSource(4, 1, 0), Inputs: []int64{100}},
		{Name: "static-prune-wide", Source: workloads.StaticPruneSource(3, 2, 0), Inputs: []int64{100}},
	} {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Compile()
			off, prunedOff, ranOff := runWithPrune(p, w, 1, false)
			on, prunedOn, ranOn := runWithPrune(p, w, 1, true)
			if on != off {
				t.Fatalf("verdicts differ\n--- off ---\n%s\n--- on ---\n%s", off, on)
			}
			if prunedOff != 0 {
				t.Errorf("prune off reported %d pruned items", prunedOff)
			}
			if prunedOn == 0 {
				t.Fatalf("prune on skipped nothing (ran %d items)", ranOn)
			}
			if ranOn+prunedOn != ranOff {
				t.Errorf("item accounting: off ran %d, on ran %d + pruned %d", ranOff, ranOn, prunedOn)
			}
			if reduction := float64(prunedOn) / float64(ranOff); reduction < 0.20 {
				t.Errorf("reduction %.0f%% < 20%% (ran %d of %d items)", reduction*100, ranOn, ranOff)
			} else {
				t.Logf("pruned %d of %d worklist items (%.0f%%)", prunedOn, ranOff, reduction*100)
			}
		})
	}
}

// TestStaticRaceFreeMeansNoVerdicts ties the static and dynamic sides
// together: when the artifact claims RaceFree, a full dynamic run must
// report no races — the claim backs the server's fast path, which
// answers such submissions without running them.
func TestStaticRaceFreeMeansNoVerdicts(t *testing.T) {
	src := `var counter = 0
mutex m
fn worker() {
	lock(m)
	counter = counter + 1
	unlock(m)
}
fn main() {
	let a = spawn worker()
	let b = spawn worker()
	lock(m)
	counter = counter + 10
	let snap = counter
	unlock(m)
	join(a)
	join(b)
	print("c=", snap)
}`
	p := bytecode.MustCompile(src, "locked", bytecode.Options{})
	if f := sa.Analyze(p); !f.RaceFree {
		t.Fatalf("expected statically race-free, got %d candidates", len(f.Candidates))
	}
	res := core.Run(p, nil, nil, core.DefaultOptions())
	if len(res.Verdicts) != 0 || len(res.Errors) != 0 {
		t.Fatalf("dynamic run found races on a statically race-free program: %d verdicts, %d errors",
			len(res.Verdicts), len(res.Errors))
	}
}
