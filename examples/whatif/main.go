// What-if: "is it safe to remove this synchronization?" (§5.1).
//
// The paper turns a synchronization operation in memcached into a no-op
// and asks Portend for the consequences; Portend finds an interleaving
// that crashes the server, so the lock stays. This example reproduces
// that workflow on the memcached workload through the public API.
//
//	go run ./examples/whatif
package main

import (
	"context"
	"fmt"
	"log"

	"repro/portend"
)

func main() {
	a := portend.New()

	fmt.Println("question: can we drop the slotMu critical sections to reduce lock contention?")

	res, err := a.WhatIf(context.Background(), portend.Workload("memcached"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removing lock/unlock at source lines %v\n\n", res.RemovedLines)

	if len(res.NewRaces) == 0 {
		fmt.Println("no new races: the lock looks removable under the analyzed inputs")
		return
	}
	fmt.Printf("removing the lock induces %d new race(s):\n\n", len(res.NewRaces))
	for _, v := range res.NewRaces {
		fmt.Println(v.DebugReport())
	}
	if res.KeepSync() {
		fmt.Println("answer: NO — an interleaving crashes the server; keep the lock.")
	} else {
		fmt.Println("answer: the induced races look benign; removal is defensible.")
	}
}
