// What-if: "is it safe to remove this synchronization?" (§5.1).
//
// The paper turns a synchronization operation in memcached into a no-op
// and asks Portend for the consequences; Portend finds an interleaving
// that crashes the server, so the lock stays. This example reproduces
// that workflow on the memcached workload.
//
//	go run ./examples/whatif
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	w := workloads.ByName("memcached")

	fmt.Println("question: can we drop the slotMu critical sections to reduce lock contention?")
	fmt.Printf("removing lock/unlock at source lines %v\n\n", w.WhatIfLines)

	res, err := core.WhatIf(w.Source, w.Name, w.WhatIfLines, w.Args, w.Inputs, core.DefaultOptions())
	if err != nil {
		panic(err)
	}

	if len(res.NewRaces) == 0 {
		fmt.Println("no new races: the lock looks removable under the analyzed inputs")
		return
	}
	fmt.Printf("removing the lock induces %d new race(s):\n\n", len(res.NewRaces))
	verdictKeepLock := false
	for _, v := range res.NewRaces {
		fmt.Println(v.Report(res.Modified))
		if v.Class == core.SpecViolated {
			verdictKeepLock = true
		}
	}
	if verdictKeepLock {
		fmt.Println("answer: NO — an interleaving crashes the server; keep the lock.")
	} else {
		fmt.Println("answer: the induced races look benign; removal is defensible.")
	}
}
