// Triage: the bug-report triage scenario from the paper's introduction.
//
// A detector like ThreadSanitizer floods developers with race reports
// ("over 1,000 unique data races in Firefox"). Portend's job is to order
// them by predicted consequence so developers fix the critical ones
// first. This example runs the detector+classifier over several of the
// evaluation workloads and prints one prioritized queue.
//
//	go run ./examples/triage
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/workloads"
)

type item struct {
	program string
	global  string
	verdict *core.Verdict
}

func main() {
	var queue []item
	for _, name := range []string{"sqlite", "ctrace", "bbuf", "rw"} {
		w := workloads.ByName(name)
		prog := w.Compile()
		res := core.Run(prog, w.Args, w.Inputs, core.DefaultOptions())
		for _, v := range res.Verdicts {
			queue = append(queue, item{
				program: name,
				global:  prog.Globals[v.Race.Key.Obj].Name,
				verdict: v,
			})
		}
	}

	// Order by harmfulness: specViol, then outDiff, then k-witness,
	// then singleOrd.
	sort.SliceStable(queue, func(i, j int) bool {
		return core.HarmfulnessRank(queue[i].verdict.Class) <
			core.HarmfulnessRank(queue[j].verdict.Class)
	})

	fmt.Printf("triage queue: %d races across 4 programs\n", len(queue))
	fmt.Println("--------------------------------------------------")
	for i, it := range queue {
		v := it.verdict
		line := fmt.Sprintf("#%02d [%s] %s/%s — %s", i+1, v.Class, it.program, it.global, v)
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println("a developer works top-down: the deadlock and the overflow first,")
	fmt.Println("the schedule-dependent outputs next, the k-witness races last.")
}
