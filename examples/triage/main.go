// Triage: the bug-report triage scenario from the paper's introduction.
//
// A detector like ThreadSanitizer floods developers with race reports
// ("over 1,000 unique data races in Firefox"). Portend's job is to order
// them by predicted consequence so developers fix the critical ones
// first. This example streams verdicts for several evaluation workloads
// off one Analyzer and prints a single prioritized queue.
//
//	go run ./examples/triage
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/portend"
)

type item struct {
	program string
	verdict portend.Verdict
}

func main() {
	a := portend.New()

	var queue []item
	for _, name := range []string{"sqlite", "ctrace", "bbuf", "rw"} {
		// Analyze streams verdicts as they land; here we just drain the
		// sequence into the queue.
		for v, err := range a.Analyze(context.Background(), portend.Workload(name)) {
			if err != nil {
				log.Fatal(err)
			}
			queue = append(queue, item{program: name, verdict: v})
		}
	}

	// Order by harmfulness: specViol, then outDiff, then k-witness,
	// then singleOrd.
	sort.SliceStable(queue, func(i, j int) bool {
		return queue[i].verdict.Class.Rank() < queue[j].verdict.Class.Rank()
	})

	fmt.Printf("triage queue: %d races across 4 programs\n", len(queue))
	fmt.Println("--------------------------------------------------")
	for i, it := range queue {
		v := it.verdict
		fmt.Printf("#%02d [%s] %s/%s — %s\n", i+1, v.Class, it.program, v.Race.Object, v)
	}
	fmt.Println()
	fmt.Println("a developer works top-down: the deadlock and the overflow first,")
	fmt.Println("the schedule-dependent outputs next, the k-witness races last.")
}
