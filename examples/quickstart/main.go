// Quickstart: detect and classify the races in a small PIL program.
//
// This is the smallest end-to-end use of the public API: build an
// Analyzer, point it at a source target, and inspect the verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/portend"
)

// A tiny program with two races: a harmful one (the alternate ordering
// indexes out of bounds, like Fig 4 of the paper) and a benign redundant
// write.
const src = `
var idx = 4
var arr[4]
var gen = 0
fn worker() {
	idx = 1
	gen = 7
}
fn main() {
	let t = spawn worker()
	yield()
	arr[idx] = 99
	gen = 7
	join(t)
	print("done gen=", gen)
}`

func main() {
	// The defaults are the paper's evaluation settings: Mp=5 primary
	// paths, Ma=2 alternate schedules, 2 symbolic inputs.
	a := portend.New()

	report, err := a.AnalyzeAll(context.Background(), portend.Source("quickstart", src))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected %d distinct data race(s)\n\n", len(report.Verdicts))
	for _, v := range report.Verdicts {
		fmt.Printf("== race on %s: %s\n", v.Race.Object, v)
		fmt.Println(v.DebugReport())
	}

	// The taxonomy makes triage trivial: anything specViol first.
	for _, v := range report.ByClass()[portend.SpecViolated] {
		fmt.Printf("FIX FIRST: %s (%s: %s)\n", v.Race.ID, v.Consequence, v.Detail)
	}
}
