// Quickstart: detect and classify the races in a small PIL program.
//
// This is the smallest end-to-end use of the library: compile a program,
// run Portend (detection + classification), and inspect the verdicts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/core"
)

// A tiny program with two races: a harmful one (the alternate ordering
// indexes out of bounds, like Fig 4 of the paper) and a benign redundant
// write.
const src = `
var idx = 4
var arr[4]
var gen = 0
fn worker() {
	idx = 1
	gen = 7
}
fn main() {
	let t = spawn worker()
	yield()
	arr[idx] = 99
	gen = 7
	join(t)
	print("done gen=", gen)
}`

func main() {
	prog := bytecode.MustCompile(src, "quickstart", bytecode.Options{})

	// Run with the paper's evaluation defaults: Mp=5 primary paths,
	// Ma=2 alternate schedules, 2 symbolic inputs.
	result := core.Run(prog, nil, nil, core.DefaultOptions())

	fmt.Printf("detected %d distinct data race(s)\n\n", len(result.Verdicts))
	for _, v := range result.Verdicts {
		fmt.Printf("== race on %s: %s\n", prog.Globals[v.Race.Key.Obj].Name, v)
		fmt.Println(v.Report(prog))
	}

	// The taxonomy makes triage trivial: anything specViol first.
	for _, v := range result.ByClass()[core.SpecViolated] {
		fmt.Printf("FIX FIRST: %s (%s: %s)\n", v.Race.ID(), v.Consequence, v.Detail)
	}
}
