// Ad-hoc synchronization: why most pbzip2 races are not bugs (§2.3, Fig 8d).
//
// pbzip2's pipeline stages hand data over via busy-wait flags. Dynamic
// detectors report every one of those hand-offs as a race; Portend
// proves the alternate ordering cannot occur ("single ordering") so the
// reports can be deprioritized. This example shows the breakdown and one
// full debugging-aid report.
//
//	go run ./examples/adhoc
package main

import (
	"context"
	"fmt"
	"log"

	"repro/portend"
)

func main() {
	a := portend.New()
	report, err := a.AnalyzeAll(context.Background(), portend.Workload("pbzip2"))
	if err != nil {
		log.Fatal(err)
	}

	byClass := report.ByClass()
	fmt.Printf("pbzip2-sim: %d distinct races\n", len(report.Verdicts))
	fmt.Printf("  specViol : %d (real bugs: crashes under the alternate ordering)\n", len(byClass[portend.SpecViolated]))
	fmt.Printf("  outDiff  : %d (schedule-dependent output)\n", len(byClass[portend.OutputDiffers]))
	fmt.Printf("  k-witness: %d\n", len(byClass[portend.KWitnessHarmless]))
	fmt.Printf("  singleOrd: %d (ad-hoc synchronization: only one ordering possible)\n\n", len(byClass[portend.SingleOrdering]))

	fmt.Println("without classification, a developer would wade through all of them;")
	fmt.Printf("with it, only %d need attention.\n\n", len(byClass[portend.SpecViolated])+len(byClass[portend.OutputDiffers]))

	if so := byClass[portend.SingleOrdering]; len(so) > 0 {
		fmt.Println("example single-ordering report (a pipeline hand-off):")
		fmt.Println(so[0].DebugReport())
	}
	if sv := byClass[portend.SpecViolated]; len(sv) > 0 {
		fmt.Println("example harmful-race report (fix this one):")
		fmt.Println(sv[0].DebugReport())
	}
}
