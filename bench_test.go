// Package repro's top-level benchmarks regenerate each table and figure
// of the paper's evaluation and measure the design-choice ablations,
// including sequential vs parallel classification. Run them with:
//
//	go test -bench=. -benchmem
//
// Absolute timings differ from the paper's (the substrate is the PIL VM,
// not the authors' Cloud9 testbed); the shapes to check — who wins, by
// what rough factor, how time scales with preemptions/branches — are
// asserted by the test suite and reported by cmd/paper-eval.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/race"
	"repro/internal/sched"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// BenchmarkTable1_ProgramInventory measures front-end cost: parsing and
// compiling the whole workload suite (the static side of Table 1).
func BenchmarkTable1_ProgramInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			_ = w.Compile()
		}
	}
}

// BenchmarkTable2_SpecViolatedRaces classifies the harmful races of
// Table 2: the SQLite deadlock and the ctrace (Fig 4) crash.
func BenchmarkTable2_SpecViolatedRaces(b *testing.B) {
	sq := workloads.SQLite()
	ct := workloads.Ctrace()
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(sq.Compile(), sq.Args, sq.Inputs, opts)
		core.Run(ct.Compile(), ct.Args, ct.Inputs, opts)
	}
}

// BenchmarkTable3_Classification runs the full 93-race classification
// sweep (Table 3).
func BenchmarkTable3_Classification(b *testing.B) {
	opts := core.DefaultOptions()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(opts)
		if c, t := s.Accuracy(); c == 0 || t == 0 {
			b.Fatal("suite produced no verdicts")
		}
	}
}

// BenchmarkTable4_ClassificationTime measures per-race classification
// latency on one representative program (the quantity of Table 4).
func BenchmarkTable4_ClassificationTime(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(p, w.Args, w.Inputs, opts)
	}
}

// BenchmarkTable5_AccuracyComparison measures the comparator classifiers
// (Record/Replay-Analyzer and the ad-hoc detector) against Portend on the
// same races (Table 5).
func BenchmarkTable5_AccuracyComparison(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	det := race.Detect(p, w.Args, w.Inputs, 3_000_000)
	cl := core.New(p, core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range det.Reports {
			if _, err := cl.RecordReplayAnalyzer(rep, det.Trace); err != nil {
				b.Fatal(err)
			}
			if _, err := cl.AdHocDetector(rep, det.Trace); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7_TechniqueBreakdown measures the four cumulative analysis
// configurations (single-path → +ad-hoc → +multi-path → +multi-schedule)
// on one program (Fig 7).
func BenchmarkFig7_TechniqueBreakdown(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	cfgs := eval.Fig7Configs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			core.Run(p, w.Args, w.Inputs, cfg.Opts)
		}
	}
}

// BenchmarkFig9_Scalability measures one cell of the preemptions ×
// branches sweep (Fig 9); the full grid is rendered by cmd/paper-eval.
func BenchmarkFig9_Scalability(b *testing.B) {
	for _, cell := range []struct{ p, br int }{{20, 5}, {100, 10}, {400, 20}} {
		b.Run(benchName(cell.p, cell.br), func(b *testing.B) {
			src := workloads.ScaleSource(cell.p, cell.br)
			w := &workloads.Workload{Name: "scale", Source: src, Inputs: []int64{3}}
			p := w.Compile()
			opts := core.DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(p, nil, w.Inputs, opts)
			}
		})
	}
}

func benchName(p, b int) string {
	return "preempt=" + itoa(p) + "/branches=" + itoa(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig10_AccuracyVsK measures the cost of growing k = Mp×Ma
// (Fig 10's x-axis): k=1 vs the default k=10.
func BenchmarkFig10_AccuracyVsK(b *testing.B) {
	w := workloads.Ctrace()
	p := w.Compile()
	low := core.DefaultOptions()
	low.MultiPath = false
	low.MultiSchedule = false
	high := core.DefaultOptions()
	b.Run("k=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, low)
		}
	})
	b.Run("k=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, high)
		}
	})
}

// BenchmarkAblation_StateVsOutput compares symbolic output comparison
// (Portend's criterion, §3.3.1) against concrete comparison (the
// ablated mode; see docs/classification.md).
func BenchmarkAblation_StateVsOutput(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	symbolic := core.DefaultOptions()
	concrete := core.DefaultOptions()
	concrete.SymbolicOutput = false
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, symbolic)
		}
	})
	b.Run("concrete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, concrete)
		}
	})
}

// BenchmarkAblation_ParallelClassify measures the "embarrassingly
// parallel" claim (§3.4) in isolation: detection is hoisted out so
// the arms time only the per-race classification, fanned across the
// engine's worker pool via sched.Map exactly as core.Run does.
func BenchmarkAblation_ParallelClassify(b *testing.B) {
	w := workloads.Pbzip2()
	p := w.Compile()
	det := race.Detect(p, w.Args, w.Inputs, 3_000_000)
	opts := core.DefaultOptions()
	opts.Parallel = 1
	classify := func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			sched.Map(workers, len(det.Reports), func(j int) {
				cl := core.New(p, opts)
				if _, err := cl.Classify(det.Reports[j], det.Trace); err != nil {
					b.Error(err) // Error, not Fatal: fn runs on pool goroutines
				}
			})
		}
	}
	b.Run("serial", func(b *testing.B) { classify(b, 1) })
	b.Run("parallel", func(b *testing.B) { classify(b, sched.Workers(0)) })
}

// BenchmarkParallel_BigWorkloads compares the sequential engine against
// the worker pool end-to-end (detection + classification) on the
// biggest workloads — the wall-clock evidence behind the parallel
// engine. Detection is single-threaded in both modes, so the speedup is
// bounded by the classification share of each run; on a single-core
// host the wide pool instead measures the pool's overhead.
func BenchmarkParallel_BigWorkloads(b *testing.B) {
	widths := []int{1, sched.Workers(0)}
	if widths[1] == 1 {
		widths[1] = 4 // single-core host: still exercise a wide pool
	}
	for _, name := range []string{"pbzip2", "memcached", "ocean", "fmm"} {
		w := workloads.ByName(name)
		if w == nil {
			b.Fatalf("unknown workload %q", name)
		}
		p := w.Compile()
		for _, par := range widths {
			opts := core.DefaultOptions()
			opts.Parallel = par
			b.Run(fmt.Sprintf("%s/parallel=%d", name, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.Run(p, w.Args, w.Inputs, opts)
				}
			})
		}
	}
}

// BenchmarkVM_Interpretation measures raw interpreter throughput (the
// "Cloud9 running time" baseline of Table 4).
func BenchmarkVM_Interpretation(b *testing.B) {
	w := workloads.Fmm()
	p := w.Compile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := vm.NewState(p, w.Args, w.Inputs)
		res := vm.NewMachine(st, vm.NewRoundRobin()).Run(50_000_000)
		if res.Kind != vm.StopFinished {
			b.Fatalf("run: %v", res.Kind)
		}
	}
}

// BenchmarkVM_DetectionOverhead measures the happens-before detector's
// overhead over plain interpretation.
func BenchmarkVM_DetectionOverhead(b *testing.B) {
	w := workloads.Fmm()
	p := w.Compile()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := vm.NewState(p, w.Args, w.Inputs)
			vm.NewMachine(st, vm.NewRoundRobin()).Run(50_000_000)
		}
	})
	b.Run("detector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.Detect(p, w.Args, w.Inputs, 50_000_000)
		}
	})
}

// BenchmarkCheckpoint_SharedReplay measures the shared replay-checkpoint
// store and memoizing solver cache on the workload shape they exist for:
// many races strung along one long trace, where every classification
// without reuse re-interprets the whole prefix (O(races × prefix)) and
// with reuse resumes from the nearest prior race's snapshot (O(prefix)).
// The caches-off arm is the honest baseline — identical verdicts,
// no reuse.
func BenchmarkCheckpoint_SharedReplay(b *testing.B) {
	src := workloads.ManyRaceSource(24, 8000)
	w := &workloads.Workload{Name: "many-race", Source: src, Inputs: []int64{3}}
	p := w.Compile()
	for _, noCache := range []bool{false, true} {
		name := "caches=on"
		if noCache {
			name = "caches=off"
		}
		opts := core.DefaultOptions()
		opts.NoCache = noCache
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.Run(p, nil, w.Inputs, opts)
				if len(res.Errors) != 0 {
					b.Fatalf("classification errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkCheckpoint_SymbolicPrefix measures the symbolic checkpoint
// store on the workload shape the concrete store cannot help: the
// input() read (and input-dependent branching) precedes every race, so
// every pre-race replay prefix has consumed a symbolic read and
// multi-path exploration can only resume from the symbolic store's
// mainline snapshots (pending forks included). The caches-off arm
// re-explores every race's prefix from the root — identical verdicts,
// no reuse.
func BenchmarkCheckpoint_SymbolicPrefix(b *testing.B) {
	src := workloads.SymPrefixRaceSource(16, 6, 6000)
	w := &workloads.Workload{Name: "sym-prefix", Source: src, Inputs: []int64{3}}
	p := w.Compile()
	for _, noCache := range []bool{false, true} {
		name := "caches=on"
		if noCache {
			name = "caches=off"
		}
		opts := core.DefaultOptions()
		opts.NoCache = noCache
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := core.Run(p, nil, w.Inputs, opts)
				if len(res.Errors) != 0 {
					b.Fatalf("classification errors: %v", res.Errors)
				}
			}
		})
	}
}

// BenchmarkStaticPrune measures the static dead-item prune on the
// workload shape it exists for: nested tainted guards gate the racy
// region, so multi-path exploration forks one bypass sibling per guard
// and every sibling runs a long concrete tail to completion before
// being discarded. The prune skips those siblings up front — the test
// suite pins that it removes ≥20% of worklist items on these shapes
// with byte-identical verdicts; this benchmark prices the saving. The
// prune=off arm is the honest baseline.
func BenchmarkStaticPrune(b *testing.B) {
	for _, shape := range []struct {
		name              string
		depth, races, pad int
	}{
		{"deep", 6, 2, 4000},
		{"wide", 3, 4, 4000},
	} {
		src := workloads.StaticPruneSource(shape.depth, shape.races, shape.pad)
		w := &workloads.Workload{Name: "static-prune-" + shape.name, Source: src, Inputs: []int64{100}}
		p := w.Compile()
		for _, prune := range []bool{true, false} {
			name := shape.name + "/prune=on"
			if !prune {
				name = shape.name + "/prune=off"
			}
			opts := core.DefaultOptions()
			opts.NoStaticPrune = !prune
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := core.Run(p, nil, w.Inputs, opts)
					if len(res.Errors) != 0 {
						b.Fatalf("classification errors: %v", res.Errors)
					}
				}
			})
		}
	}
}

// BenchmarkVM_Checkpoint measures State.Clone, the primitive behind
// Algorithm 1's checkpoints and Algorithm 2's forking.
func BenchmarkVM_Checkpoint(b *testing.B) {
	w := workloads.Memcached()
	p := w.Compile()
	st := vm.NewState(p, w.Args, w.Inputs)
	vm.NewMachine(st, vm.NewRoundRobin()).Run(5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Clone()
	}
}
