// Package repro's top-level benchmarks regenerate each table and figure
// of the paper's evaluation (see DESIGN.md's per-experiment index) and
// measure the design-choice ablations. Run them with:
//
//	go test -bench=. -benchmem
//
// Absolute timings differ from the paper's (the substrate is the PIL VM,
// not the authors' Cloud9 testbed); the shapes to check — who wins, by
// what rough factor, how time scales with preemptions/branches — are
// asserted by the test suite and reported by cmd/paper-eval.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/race"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// BenchmarkTable1_ProgramInventory measures front-end cost: parsing and
// compiling the whole workload suite (the static side of Table 1).
func BenchmarkTable1_ProgramInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			_ = w.Compile()
		}
	}
}

// BenchmarkTable2_SpecViolatedRaces classifies the harmful races of
// Table 2: the SQLite deadlock and the ctrace (Fig 4) crash.
func BenchmarkTable2_SpecViolatedRaces(b *testing.B) {
	sq := workloads.SQLite()
	ct := workloads.Ctrace()
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(sq.Compile(), sq.Args, sq.Inputs, opts)
		core.Run(ct.Compile(), ct.Args, ct.Inputs, opts)
	}
}

// BenchmarkTable3_Classification runs the full 93-race classification
// sweep (Table 3).
func BenchmarkTable3_Classification(b *testing.B) {
	opts := core.DefaultOptions()
	for i := 0; i < b.N; i++ {
		s := eval.RunSuite(opts)
		if c, t := s.Accuracy(); c == 0 || t == 0 {
			b.Fatal("suite produced no verdicts")
		}
	}
}

// BenchmarkTable4_ClassificationTime measures per-race classification
// latency on one representative program (the quantity of Table 4).
func BenchmarkTable4_ClassificationTime(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(p, w.Args, w.Inputs, opts)
	}
}

// BenchmarkTable5_AccuracyComparison measures the comparator classifiers
// (Record/Replay-Analyzer and the ad-hoc detector) against Portend on the
// same races (Table 5).
func BenchmarkTable5_AccuracyComparison(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	det := race.Detect(p, w.Args, w.Inputs, 3_000_000)
	cl := core.New(p, core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range det.Reports {
			if _, err := cl.RecordReplayAnalyzer(rep, det.Trace); err != nil {
				b.Fatal(err)
			}
			if _, err := cl.AdHocDetector(rep, det.Trace); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig7_TechniqueBreakdown measures the four cumulative analysis
// configurations (single-path → +ad-hoc → +multi-path → +multi-schedule)
// on one program (Fig 7).
func BenchmarkFig7_TechniqueBreakdown(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	cfgs := eval.Fig7Configs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			core.Run(p, w.Args, w.Inputs, cfg.Opts)
		}
	}
}

// BenchmarkFig9_Scalability measures one cell of the preemptions ×
// branches sweep (Fig 9); the full grid is rendered by cmd/paper-eval.
func BenchmarkFig9_Scalability(b *testing.B) {
	for _, cell := range []struct{ p, br int }{{20, 5}, {100, 10}, {400, 20}} {
		b.Run(benchName(cell.p, cell.br), func(b *testing.B) {
			src := workloads.ScaleSource(cell.p, cell.br)
			w := &workloads.Workload{Name: "scale", Source: src, Inputs: []int64{3}}
			p := w.Compile()
			opts := core.DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Run(p, nil, w.Inputs, opts)
			}
		})
	}
}

func benchName(p, b int) string {
	return "preempt=" + itoa(p) + "/branches=" + itoa(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig10_AccuracyVsK measures the cost of growing k = Mp×Ma
// (Fig 10's x-axis): k=1 vs the default k=10.
func BenchmarkFig10_AccuracyVsK(b *testing.B) {
	w := workloads.Ctrace()
	p := w.Compile()
	low := core.DefaultOptions()
	low.MultiPath = false
	low.MultiSchedule = false
	high := core.DefaultOptions()
	b.Run("k=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, low)
		}
	})
	b.Run("k=10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, high)
		}
	})
}

// BenchmarkAblation_StateVsOutput compares symbolic output comparison
// (Portend's criterion) against concrete comparison (the ablated mode) —
// DESIGN.md decision 1.
func BenchmarkAblation_StateVsOutput(b *testing.B) {
	w := workloads.Bbuf()
	p := w.Compile()
	symbolic := core.DefaultOptions()
	concrete := core.DefaultOptions()
	concrete.SymbolicOutput = false
	b.Run("symbolic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, symbolic)
		}
	})
	b.Run("concrete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Run(p, w.Args, w.Inputs, concrete)
		}
	})
}

// BenchmarkAblation_ParallelClassify measures the "embarrassingly
// parallel" claim (§3.4): classifying a program's races serially vs
// fanned out across goroutines — DESIGN.md decision 5.
func BenchmarkAblation_ParallelClassify(b *testing.B) {
	w := workloads.Pbzip2()
	p := w.Compile()
	det := race.Detect(p, w.Args, w.Inputs, 3_000_000)
	opts := core.DefaultOptions()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cl := core.New(p, opts)
			for _, rep := range det.Reports {
				if _, err := cl.Classify(rep, det.Trace); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			done := make(chan error, len(det.Reports))
			for _, rep := range det.Reports {
				rep := rep
				go func() {
					// Each goroutine gets its own classifier (and thus
					// solver); races classify independently.
					cl := core.New(p, opts)
					_, err := cl.Classify(rep, det.Trace)
					done <- err
				}()
			}
			for range det.Reports {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkVM_Interpretation measures raw interpreter throughput (the
// "Cloud9 running time" baseline of Table 4).
func BenchmarkVM_Interpretation(b *testing.B) {
	w := workloads.Fmm()
	p := w.Compile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := vm.NewState(p, w.Args, w.Inputs)
		res := vm.NewMachine(st, vm.NewRoundRobin()).Run(50_000_000)
		if res.Kind != vm.StopFinished {
			b.Fatalf("run: %v", res.Kind)
		}
	}
}

// BenchmarkVM_DetectionOverhead measures the happens-before detector's
// overhead over plain interpretation.
func BenchmarkVM_DetectionOverhead(b *testing.B) {
	w := workloads.Fmm()
	p := w.Compile()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := vm.NewState(p, w.Args, w.Inputs)
			vm.NewMachine(st, vm.NewRoundRobin()).Run(50_000_000)
		}
	})
	b.Run("detector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			race.Detect(p, w.Args, w.Inputs, 50_000_000)
		}
	})
}

// BenchmarkVM_Checkpoint measures State.Clone, the primitive behind
// Algorithm 1's checkpoints and Algorithm 2's forking.
func BenchmarkVM_Checkpoint(b *testing.B) {
	w := workloads.Memcached()
	p := w.Compile()
	st := vm.NewState(p, w.Args, w.Inputs)
	vm.NewMachine(st, vm.NewRoundRobin()).Run(5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Clone()
	}
}
